// Package report joins the dynamic per-region speculation ledgers
// (cpu.RegionLedger) with the linter's static region table into a ranked
// per-loop profitability report: for every hinted loop, what the speculation
// engine actually did with it — spawns, squashes by cause, speculative work
// won and lost, packing accuracy, dominant stall — and a keep/retune/drop
// verdict explaining why the loop does (or does not) speed up. The report is
// the paper's "which hints pay" analysis (§5.1 de-selection, §6.4 no-speedup
// classes) produced directly from a run instead of estimated after the fact.
package report

import (
	"fmt"
	"sort"

	"loopfrog/internal/core"
	"loopfrog/internal/cpu"
	"loopfrog/internal/lint"
)

// Verdicts, ordered from healthy to hopeless.
const (
	// VerdictKeep: the region wins more speculative work than it loses.
	VerdictKeep = "keep"
	// VerdictRetune: the region speculates but loses more than it wins —
	// the dominant squash cause names the knob to turn.
	VerdictRetune = "retune"
	// VerdictDrop: the region never pays — hints spawn nothing, or every
	// speculative instruction is squashed.
	VerdictDrop = "drop"
	// VerdictUnused: the region exists statically but never executed.
	VerdictUnused = "unused"
)

// Input is everything Build joins into a Profile.
type Input struct {
	// Program names the workload.
	Program string
	// Regions are the dynamic per-region ledgers: a full run's Stats.Regions,
	// or a sampled run's interval-weighted aggregate.
	Regions []cpu.RegionLedger
	// Cycles is the run's (estimated) cycle count; BaselineCycles the
	// baseline side when an A/B pair ran (0 = unknown, speedup omitted).
	Cycles         int64
	BaselineCycles int64
	// Estimated marks sampled-run ledgers: counters are interval-weighted
	// extrapolations, not exact.
	Estimated bool
	// Lint, when non-nil, contributes the static region table (file:line
	// provenance, body shape) and LF2xx profitability notes.
	Lint *lint.Report
}

// Row is one region's joined report entry.
type Row struct {
	Region int64 `json:"region"`
	// Static provenance (zero values when no lint report was joined or the
	// region never appeared statically).
	Line      int    `json:"line,omitempty"`
	Label     string `json:"label,omitempty"`
	BodyInsts int    `json:"body_insts,omitempty"`

	// Ledger is the dynamic side, embedded with its own JSON field names.
	Ledger cpu.RegionLedger `json:"ledger"`

	// Derived explanation.
	SquashesByCause map[string]uint64 `json:"squashes_by_cause,omitempty"`
	PackAccuracy    float64           `json:"pack_accuracy"`
	DominantStall   string            `json:"dominant_stall,omitempty"`
	DominantStallN  uint64            `json:"dominant_stall_slots,omitempty"`
	Verdict         string            `json:"verdict"`
	Reason          string            `json:"reason"`
	Notes           []string          `json:"notes,omitempty"`
}

// Profile is the complete per-program report.
type Profile struct {
	Program        string  `json:"program"`
	Estimated      bool    `json:"estimated"`
	Cycles         int64   `json:"cycles"`
	BaselineCycles int64   `json:"baseline_cycles,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	// Rows are the regions ranked most-costly-first: by speculative work
	// lost, then by spawn volume.
	Rows []Row `json:"regions"`
	// OutsideSlots is the commit-slot attribution of the outside-any-region
	// bucket (the program's sequential remainder), nil when absent.
	OutsideSlots map[string]uint64 `json:"outside_slots,omitempty"`
}

// Build joins the inputs into a ranked profile.
func Build(in Input) *Profile {
	p := &Profile{
		Program:        in.Program,
		Estimated:      in.Estimated,
		Cycles:         in.Cycles,
		BaselineCycles: in.BaselineCycles,
	}
	if in.BaselineCycles > 0 && in.Cycles > 0 {
		p.Speedup = float64(in.BaselineCycles) / float64(in.Cycles)
	}
	seen := make(map[int64]bool, len(in.Regions))
	slotNames := cpu.SlotClassNames()
	for i := range in.Regions {
		l := in.Regions[i]
		if l.Region == cpu.RegionOutside {
			p.OutsideSlots = make(map[string]uint64, cpu.NumSlotClasses)
			for c, n := range l.Slots {
				if n > 0 {
					p.OutsideSlots[slotNames[c]] = n
				}
			}
			continue
		}
		seen[l.Region] = true
		p.Rows = append(p.Rows, buildRow(l, in.Lint))
	}
	// Statically known regions the run never touched still get a row: an
	// unused hint is a finding, not an omission.
	if in.Lint != nil {
		for _, ri := range in.Lint.Regions {
			if !seen[ri.ID] {
				p.Rows = append(p.Rows, buildRow(cpu.RegionLedger{Region: ri.ID}, in.Lint))
			}
		}
	}
	sort.SliceStable(p.Rows, func(i, j int) bool {
		a, b := &p.Rows[i], &p.Rows[j]
		if a.Ledger.SpecLost != b.Ledger.SpecLost {
			return a.Ledger.SpecLost > b.Ledger.SpecLost
		}
		if a.Ledger.Spawns != b.Ledger.Spawns {
			return a.Ledger.Spawns > b.Ledger.Spawns
		}
		return a.Region < b.Region
	})
	return p
}

// buildRow derives one region's explanation from its ledger and the static
// table.
func buildRow(l cpu.RegionLedger, lrep *lint.Report) Row {
	r := Row{Region: l.Region, Ledger: l, PackAccuracy: l.PackAccuracy()}
	if n := l.SquashTotal(); n > 0 {
		r.SquashesByCause = make(map[string]uint64)
		for c, v := range l.Squashes {
			if v > 0 {
				r.SquashesByCause[core.SquashCause(c).String()] = v
			}
		}
	}
	if cls, n := l.DominantStall(); n > 0 {
		r.DominantStall = cls.String()
		r.DominantStallN = n
	}
	if lrep != nil {
		if ri := lrep.RegionByID(l.Region); ri != nil {
			r.Line = ri.Line
			r.Label = ri.Label
			r.BodyInsts = ri.BodyInsts
		}
		for i := range lrep.Diags {
			d := &lrep.Diags[i]
			if d.Region == l.Region && d.Severity == lint.SevInfo {
				r.Notes = append(r.Notes, fmt.Sprintf("[%s] %s", d.Code, d.Message))
			}
		}
	}
	r.Verdict, r.Reason = verdict(&l)
	return r
}

// verdict classifies the region's profitability and explains it.
func verdict(l *cpu.RegionLedger) (string, string) {
	squashes := l.SquashTotal()
	switch {
	case l.Detaches == 0 && l.Spawns == 0:
		return VerdictUnused, "region never executed: its detach was not reached"
	case l.Spawns == 0:
		if l.DetachNoContext == l.Detaches && l.Detaches > 0 {
			return VerdictRetune, fmt.Sprintf(
				"all %d detaches found no free threadlet context: more contexts, or fewer competing hints, would let this region speculate",
				l.Detaches)
		}
		return VerdictDrop, fmt.Sprintf(
			"%d detaches spawned no epochs: the hint costs dispatch bandwidth and wins nothing", l.Detaches)
	case l.SpecWon == 0 && l.SpecLost > 0:
		return VerdictDrop, fmt.Sprintf(
			"every speculative instruction was squashed (%d lost, dominant cause %s): speculation here is pure waste",
			l.SpecLost, dominantSquash(l))
	case l.SpecLost > l.SpecWon:
		return VerdictRetune, fmt.Sprintf(
			"loses more speculative work than it keeps (%d lost vs %d won over %d squashes, dominant cause %s)",
			l.SpecLost, l.SpecWon, squashes, dominantSquash(l))
	default:
		reason := fmt.Sprintf("%d speculative instructions promoted vs %d lost across %d spawns",
			l.SpecWon, l.SpecLost, l.Spawns)
		if squashes == 0 {
			reason = fmt.Sprintf("%d speculative instructions promoted with zero squashes across %d spawns",
				l.SpecWon, l.Spawns)
		}
		return VerdictKeep, reason
	}
}

// dominantSquash names the squash cause with the highest count.
func dominantSquash(l *cpu.RegionLedger) string {
	best, bestN := 0, uint64(0)
	for c, n := range l.Squashes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	if bestN == 0 {
		return "none"
	}
	return core.SquashCause(best).String()
}
