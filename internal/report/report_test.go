package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"loopfrog/internal/core"
	"loopfrog/internal/cpu"
	"loopfrog/internal/lint"
)

// ledgers builds a profile input covering every verdict class plus the
// outside bucket and a statically-known-but-never-executed region.
func testInput() Input {
	healthy := cpu.RegionLedger{Region: 40, Detaches: 10, Spawns: 8, Retires: 8, Promotes: 8, SpecWon: 900, SpecLost: 10}
	healthy.Squashes[core.SquashWrongPath] = 1
	healthy.Slots[cpu.SlotIQFull] = 500

	lossy := cpu.RegionLedger{Region: 50, Detaches: 20, Spawns: 20, SpecWon: 100, SpecLost: 400}
	lossy.Squashes[core.SquashConflict] = 15

	hopeless := cpu.RegionLedger{Region: 60, Detaches: 5, Spawns: 5, SpecLost: 50}
	hopeless.Squashes[core.SquashOverflow] = 5

	starved := cpu.RegionLedger{Region: 70, Detaches: 6, DetachNoContext: 6}

	outside := cpu.RegionLedger{Region: cpu.RegionOutside}
	outside.Slots[cpu.SlotRetiredArch] = 1000

	lrep := &lint.Report{
		Program: "synthetic",
		Regions: []lint.RegionInfo{
			{ID: 40, Label: "hot_loop", Line: 12, BodyInsts: 9},
			{ID: 80, Label: "cold_loop", Line: 40, BodyInsts: 4}, // never executed
		},
	}
	return Input{
		Program:        "synthetic",
		Regions:        []cpu.RegionLedger{outside, healthy, lossy, hopeless, starved},
		Cycles:         1000,
		BaselineCycles: 1600,
		Lint:           lrep,
	}
}

func TestBuildVerdictsAndRanking(t *testing.T) {
	p := Build(testInput())
	if p.Speedup != 1.6 {
		t.Errorf("speedup = %v, want 1.6", p.Speedup)
	}
	want := map[int64]string{
		40: VerdictKeep,   // wins far more than it loses
		50: VerdictRetune, // loses more than it wins
		60: VerdictDrop,   // every speculative instruction squashed
		70: VerdictRetune, // every detach starved of contexts
		80: VerdictUnused, // static region, never executed
	}
	if len(p.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(p.Rows), len(want), p.Rows)
	}
	for _, r := range p.Rows {
		if want[r.Region] != r.Verdict {
			t.Errorf("region %d: verdict %q, want %q (%s)", r.Region, r.Verdict, want[r.Region], r.Reason)
		}
		if r.Reason == "" {
			t.Errorf("region %d: empty reason", r.Region)
		}
	}
	// Ranked by speculative work lost, most-costly-first: region 50 lost
	// 400 instructions, region 60 lost 50, region 40 lost 10.
	if p.Rows[0].Region != 50 || p.Rows[1].Region != 60 || p.Rows[2].Region != 40 {
		t.Errorf("ranking wrong: %d, %d, %d", p.Rows[0].Region, p.Rows[1].Region, p.Rows[2].Region)
	}
	// The lint join fills provenance; the dominant squash cause is named.
	if r := p.Rows[2]; r.Label != "hot_loop" || r.Line != 12 || r.BodyInsts != 9 {
		t.Errorf("region 40 static join missing: %+v", r)
	}
	if r := p.Rows[0]; r.SquashesByCause["conflict"] != 15 {
		t.Errorf("region 50 squash causes = %v", r.SquashesByCause)
	}
	if got := p.Rows[2].DominantStall; got != "iq-full" {
		t.Errorf("region 40 dominant stall = %q, want iq-full", got)
	}
	if p.OutsideSlots["retired-arch"] != 1000 {
		t.Errorf("outside slots = %v", p.OutsideSlots)
	}
}

func TestWritersRenderEveryFormat(t *testing.T) {
	p := Build(testInput())

	var txt bytes.Buffer
	if err := p.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"synthetic: 1000 cycles (exact)", "speedup 1.600x", "region 50", "retune", "conflict 15"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := p.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var round Profile
	if err := json.Unmarshal(js.Bytes(), &round); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if len(round.Rows) != len(p.Rows) || round.Rows[0].Verdict != p.Rows[0].Verdict {
		t.Errorf("round-trip lost rows: %+v", round.Rows)
	}

	var suite bytes.Buffer
	if err := WriteSuiteJSON(&suite, []*Profile{p, p}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Suite []*Profile `json:"suite"`
	}
	if err := json.Unmarshal(suite.Bytes(), &doc); err != nil || len(doc.Suite) != 2 {
		t.Fatalf("suite document: %v (%d profiles)", err, len(doc.Suite))
	}

	var html bytes.Buffer
	if err := WriteHTML(&html, []*Profile{p}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!doctype html>", `class="retune"`, "hot_loop"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}
