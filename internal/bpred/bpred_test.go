package bpred

import (
	"math/rand"
	"testing"

	"loopfrog/internal/isa"
)

// drive feeds a deterministic outcome stream for one branch PC and returns
// the accuracy over the final half of the stream (after warmup).
func drive(t *testing.T, p *Predictor, pc int, outcomes []bool) float64 {
	t.Helper()
	correct, counted := 0, 0
	for i, taken := range outcomes {
		st := p.PredictBranch(0, pc)
		if i >= len(outcomes)/2 {
			counted++
			if st.Taken == taken {
				correct++
			}
		}
		p.UpdateBranch(0, pc, taken, st)
		if st.Taken != taken {
			p.OnSquash(0, st.Hist, taken)
		}
	}
	if counted == 0 {
		return 0
	}
	return float64(correct) / float64(counted)
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(DefaultConfig(), 1)
	outcomes := make([]bool, 200)
	for i := range outcomes {
		outcomes[i] = true
	}
	if acc := drive(t, p, 100, outcomes); acc < 0.99 {
		t.Errorf("always-taken accuracy = %.2f, want ~1.0", acc)
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	p := New(DefaultConfig(), 1)
	outcomes := make([]bool, 400)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	if acc := drive(t, p, 100, outcomes); acc < 0.95 {
		t.Errorf("alternating accuracy = %.2f, want > 0.95", acc)
	}
}

func TestShortPeriodicPatternLearned(t *testing.T) {
	// TTNTTN... requires history; bimodal alone cannot learn it.
	p := New(DefaultConfig(), 1)
	outcomes := make([]bool, 600)
	for i := range outcomes {
		outcomes[i] = i%3 != 2
	}
	if acc := drive(t, p, 100, outcomes); acc < 0.95 {
		t.Errorf("periodic accuracy = %.2f, want > 0.95", acc)
	}
}

func TestLoopPredictorCatchesTripCount(t *testing.T) {
	// A backedge taken exactly 19 times then not taken, repeatedly. TAGE with
	// 64-bit history cannot see the full period; the loop predictor can.
	p := New(DefaultConfig(), 1)
	var outcomes []bool
	for rep := 0; rep < 40; rep++ {
		for i := 0; i < 19; i++ {
			outcomes = append(outcomes, true)
		}
		outcomes = append(outcomes, false)
	}
	if acc := drive(t, p, 12345, outcomes); acc < 0.98 {
		t.Errorf("loop trip accuracy = %.2f, want > 0.98", acc)
	}
	if p.LoopUses == 0 {
		t.Error("loop predictor never used")
	}
}

func TestLoopPredictorUnlearnsOnTripChange(t *testing.T) {
	p := New(DefaultConfig(), 1)
	feed := func(trip, reps int) {
		for r := 0; r < reps; r++ {
			for i := 0; i < trip; i++ {
				st := p.PredictBranch(0, 7)
				p.UpdateBranch(0, 7, true, st)
			}
			st := p.PredictBranch(0, 7)
			p.UpdateBranch(0, 7, false, st)
		}
	}
	feed(10, 10)
	e := p.loopLookup(7)
	if e == nil || e.trip != 10 || e.conf < uint8(p.cfg.LoopConfidence) {
		t.Fatalf("loop entry not trained: %+v", e)
	}
	feed(25, 2)
	e = p.loopLookup(7)
	if e.trip == 10 && e.conf >= uint8(p.cfg.LoopConfidence) {
		t.Errorf("loop entry kept stale trip count confidently: %+v", e)
	}
}

func TestRandomOutcomesDoNotCrash(t *testing.T) {
	p := New(DefaultConfig(), 2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		tid := i % 2
		pc := rng.Intn(64)
		st := p.PredictBranch(tid, pc)
		taken := rng.Intn(2) == 0
		p.UpdateBranch(tid, pc, taken, st)
		if st.Taken != taken {
			p.OnSquash(tid, st.Hist, taken)
		}
	}
	if p.Lookups != 5000 {
		t.Errorf("lookups = %d, want 5000", p.Lookups)
	}
}

func TestPerThreadletHistoryIsolated(t *testing.T) {
	p := New(DefaultConfig(), 2)
	h0 := p.History(0)
	p.PredictBranch(0, 1)
	if p.History(0) == h0 {
		t.Error("prediction did not update threadlet 0 history")
	}
	if p.History(1) != 0 {
		t.Error("threadlet 1 history polluted by threadlet 0 prediction")
	}
	p.SetHistory(1, 0xdead)
	if p.History(1) != 0xdead {
		t.Error("SetHistory failed")
	}
}

func TestOnSquashRestoresHistory(t *testing.T) {
	p := New(DefaultConfig(), 1)
	p.SetHistory(0, 0b1010)
	st := p.PredictBranch(0, 5)
	// Suppose the branch was actually taken and the prediction was wrong.
	p.OnSquash(0, st.Hist, true)
	if got := p.History(0); got != 0b10101 {
		t.Errorf("history after squash = %b, want 10101", got)
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig(), 1)
	if _, ok := p.PredictIndirect(40); ok {
		t.Error("cold BTB hit")
	}
	p.UpdateIndirect(40, 999)
	tgt, ok := p.PredictIndirect(40)
	if !ok || tgt != 999 {
		t.Errorf("BTB = (%d,%v), want (999,true)", tgt, ok)
	}
	// Aliasing entry replaces.
	p.UpdateIndirect(40+p.cfg.BTBEntries, 111)
	if _, ok := p.PredictIndirect(40); ok {
		t.Error("stale BTB entry survived aliasing")
	}
}

func TestRASLIFOPerThreadlet(t *testing.T) {
	p := New(DefaultConfig(), 2)
	p.PushRAS(0, 10)
	p.PushRAS(0, 20)
	p.PushRAS(1, 99)
	if got := p.PopRAS(0); got != 20 {
		t.Errorf("pop = %d, want 20", got)
	}
	if got := p.PopRAS(1); got != 99 {
		t.Errorf("tid1 pop = %d, want 99", got)
	}
	if got := p.PopRAS(0); got != 10 {
		t.Errorf("pop = %d, want 10", got)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	p := New(Config{TableBits: 4, BimodalBits: 4, Histories: []int{2}, LoopEntries: 4, LoopConfidence: 3, BTBEntries: 4, RASEntries: 2}, 1)
	p.PushRAS(0, 1)
	p.PushRAS(0, 2)
	p.PushRAS(0, 3) // overwrites 1
	if got := p.PopRAS(0); got != 3 {
		t.Errorf("pop = %d, want 3", got)
	}
	if got := p.PopRAS(0); got != 2 {
		t.Errorf("pop = %d, want 2", got)
	}
}

func TestIsCallIsReturn(t *testing.T) {
	call := isa.Inst{Op: isa.JAL, Rd: isa.X(1), Imm: 5}
	callInd := isa.Inst{Op: isa.JALR, Rd: isa.X(1), Rs1: isa.X(5)}
	ret := isa.Inst{Op: isa.JALR, Rd: isa.X0, Rs1: isa.X(1)}
	tail := isa.Inst{Op: isa.JAL, Rd: isa.X0, Imm: 5}
	if !IsCall(call) || !IsCall(callInd) {
		t.Error("IsCall missed a call")
	}
	if IsCall(ret) || IsCall(tail) {
		t.Error("IsCall flagged a non-call")
	}
	if !IsReturn(ret) {
		t.Error("IsReturn missed a return")
	}
	if IsReturn(call) || IsReturn(callInd) || IsReturn(tail) {
		t.Error("IsReturn flagged a non-return")
	}
}

func TestHardRandomBranchAccuracyIsMediocre(t *testing.T) {
	// Sanity check that the predictor is not an oracle: on i.i.d. random
	// outcomes accuracy must hover near chance.
	p := New(DefaultConfig(), 1)
	rng := rand.New(rand.NewSource(42))
	outcomes := make([]bool, 4000)
	for i := range outcomes {
		outcomes[i] = rng.Intn(2) == 0
	}
	acc := drive(t, p, 9, outcomes)
	if acc > 0.65 {
		t.Errorf("random-outcome accuracy = %.2f; predictor is cheating", acc)
	}
}
