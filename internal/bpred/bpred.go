// Package bpred implements the front-end predictors from Table 1 of the
// paper: a TAGE-style tagged-geometric conditional branch predictor with a
// loop-predictor component (after L-TAGE), an indirect-target buffer (BTB),
// and per-threadlet return address stacks.
//
// As in §6.1, prediction tables are shared and updated by all threadlet
// contexts, while the global history is kept per threadlet, so speculative
// threadlets neither see nor pollute each other's in-flight history.
package bpred

import "loopfrog/internal/isa"

// Config sizes the predictor.
type Config struct {
	// TableBits is log2 of entries per tagged table.
	TableBits int
	// BimodalBits is log2 of base-predictor entries.
	BimodalBits int
	// Histories lists the geometric global-history lengths of the tagged
	// tables, shortest first. Lengths above 64 are folded into the 64-bit
	// history register.
	Histories []int
	// LoopEntries is the number of loop-predictor entries.
	LoopEntries int
	// LoopConfidence is the confidence threshold before the loop predictor
	// overrides TAGE.
	LoopConfidence int
	// BTBEntries is the number of indirect-target buffer entries.
	BTBEntries int
	// RASEntries is the depth of each return address stack.
	RASEntries int
}

// DefaultConfig mirrors the 256 Kbit L-TAGE budget of Table 1 at the
// fidelity of this model.
func DefaultConfig() Config {
	return Config{
		TableBits:      10,
		BimodalBits:    13,
		Histories:      []int{2, 4, 8, 16, 32, 64},
		LoopEntries:    256,
		LoopConfidence: 3,
		BTBEntries:     4096,
		RASEntries:     48,
	}
}

type tagEntry struct {
	tag  uint16
	ctr  int8 // -4..3; >= 0 predicts taken
	u    uint8
	used bool
}

type loopEntry struct {
	pc    int
	trip  uint32
	cnt   uint32
	conf  uint8
	valid bool
}

// BranchState is the opaque per-prediction state the core must hand back at
// update time. It also carries the history snapshot used to recover a
// threadlet's history after a misprediction squash.
type BranchState struct {
	// Hist is the global history register value *before* this prediction was
	// inserted. OnSquash restores it (plus the corrected outcome).
	Hist uint64
	// Taken is the overall prediction delivered.
	Taken bool
	// provider is the tagged table that provided the prediction (-1 for the
	// bimodal base).
	provider int
	// providerIdx/providerTag locate the provider entry.
	providerIdx int
	// altTaken is the alternate (next-best) prediction, used for the
	// usefulness update.
	altTaken bool
	// loopHit notes that the loop predictor overrode TAGE.
	loopHit bool
}

// Predictor is a shared-table, per-threadlet-history branch predictor.
// It is not safe for concurrent use.
type Predictor struct {
	cfg     Config
	bimodal []int8
	tables  [][]tagEntry
	loop    []loopEntry
	hist    []uint64 // per-threadlet global history
	btb     []btbEntry
	ras     [][]int
	rasTop  []int

	// Stats.
	Lookups    uint64
	LoopUses   uint64
	RASPushes  uint64
	RASPops    uint64
	BTBHits    uint64
	BTBMisses  uint64
	Allocs     uint64
	LoopTrains uint64
}

type btbEntry struct {
	pc     int
	target int
	valid  bool
}

// New returns a predictor for numThreadlets contexts.
func New(cfg Config, numThreadlets int) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]int8, 1<<cfg.BimodalBits),
		loop:    make([]loopEntry, cfg.LoopEntries),
		hist:    make([]uint64, numThreadlets),
		btb:     make([]btbEntry, cfg.BTBEntries),
		ras:     make([][]int, numThreadlets),
		rasTop:  make([]int, numThreadlets),
	}
	p.tables = make([][]tagEntry, len(cfg.Histories))
	for i := range p.tables {
		p.tables[i] = make([]tagEntry, 1<<cfg.TableBits)
	}
	for i := range p.ras {
		p.ras[i] = make([]int, cfg.RASEntries)
	}
	return p
}

// CloneFor returns a deep copy of the predictor's learned state sized for
// numThreadlets contexts, with statistics counters reset. It is how the
// fast-functional tier's warm tables seed a detailed machine: shared
// structures (tagged tables, bimodal, loop predictor, BTB) carry over as-is,
// while the per-threadlet state — global history and return address stack —
// transfers from context 0 (the only context a sequential warming run
// exercises) into the clone's context 0; other contexts start cold exactly as
// in New, which matches the machine's semantics (a spawned threadlet inherits
// its parent's history at spawn).
func (p *Predictor) CloneFor(numThreadlets int) *Predictor {
	c := New(p.cfg, numThreadlets)
	copy(c.bimodal, p.bimodal)
	for i := range p.tables {
		copy(c.tables[i], p.tables[i])
	}
	copy(c.loop, p.loop)
	copy(c.btb, p.btb)
	if len(p.hist) > 0 && len(c.hist) > 0 {
		c.hist[0] = p.hist[0]
		copy(c.ras[0], p.ras[0])
		c.rasTop[0] = p.rasTop[0]
	}
	return c
}

// History returns the current speculative global history of a threadlet.
// The core snapshots it when spawning a threadlet so the child starts from
// the parent's history.
func (p *Predictor) History(tid int) uint64 { return p.hist[tid] }

// SetHistory overwrites a threadlet's global history (used at threadlet
// spawn and restart).
func (p *Predictor) SetHistory(tid int, h uint64) { p.hist[tid] = h }

func (p *Predictor) foldHist(h uint64, length, bits int) uint64 {
	if length > 64 {
		length = 64
	}
	masked := h & (1<<uint(length) - 1)
	var folded uint64
	for masked != 0 {
		folded ^= masked & (1<<uint(bits) - 1)
		masked >>= uint(bits)
	}
	return folded
}

func (p *Predictor) index(t int, pc int, h uint64) int {
	bits := p.cfg.TableBits
	f := p.foldHist(h, p.cfg.Histories[t], bits)
	return int((uint64(pc) ^ uint64(pc)>>uint(bits) ^ f ^ f<<1) & (1<<uint(bits) - 1))
}

func (p *Predictor) tag(t int, pc int, h uint64) uint16 {
	f := p.foldHist(h, p.cfg.Histories[t], 9)
	return uint16((uint64(pc)>>2 ^ uint64(pc) ^ f<<2 ^ f>>3) & 0x7ff)
}

func (p *Predictor) bimodalIdx(pc int) int {
	return pc & (1<<uint(p.cfg.BimodalBits) - 1)
}

// PredictBranch predicts the direction of the conditional branch at pc for
// threadlet tid, speculatively inserting the prediction into the threadlet's
// history. The returned state must be passed to UpdateBranch when the branch
// resolves, and its Hist field to OnSquash if younger state is thrown away.
func (p *Predictor) PredictBranch(tid int, pc int) BranchState {
	p.Lookups++
	h := p.hist[tid]
	st := BranchState{Hist: h, provider: -1}

	// Base prediction.
	base := p.bimodal[p.bimodalIdx(pc)] >= 0
	pred, alt := base, base

	// Longest-history tagged match wins; next-longest is the alternate.
	for t := len(p.tables) - 1; t >= 0; t-- {
		idx := p.index(t, pc, h)
		e := &p.tables[t][idx]
		if e.used && e.tag == p.tag(t, pc, h) {
			if st.provider < 0 {
				st.provider = t
				st.providerIdx = idx
				pred = e.ctr >= 0
			} else {
				alt = e.ctr >= 0
				break
			}
		}
	}
	if st.provider >= 0 && st.provider == len(p.tables)-1 {
		alt = base
	}
	st.altTaken = alt

	// Loop predictor override: when confident about the trip count, predict
	// not-taken exactly at the trip boundary.
	if le := p.loopLookup(pc); le != nil && le.conf >= uint8(p.cfg.LoopConfidence) {
		st.loopHit = true
		p.LoopUses++
		// cnt counts completed taken iterations this trip; the backedge is
		// taken while cnt < trip and falls through exactly at cnt == trip.
		pred = le.cnt < le.trip
	}

	st.Taken = pred
	p.hist[tid] = h<<1 | b2u(pred)
	return st
}

// UpdateBranch trains the predictor with the resolved outcome. If the
// prediction was wrong the caller must also call OnSquash to repair the
// threadlet's speculative history.
func (p *Predictor) UpdateBranch(tid int, pc int, taken bool, st BranchState) {
	// Bimodal always trains.
	bi := p.bimodalIdx(pc)
	p.bimodal[bi] = satUpdate(p.bimodal[bi], taken, -2, 1)

	h := st.Hist
	if st.provider >= 0 {
		e := &p.tables[st.provider][st.providerIdx]
		e.ctr = satUpdate(e.ctr, taken, -4, 3)
		providerPred := st.Taken
		if st.loopHit {
			providerPred = e.ctr >= 0 // loop override hides the provider's own call
		}
		if providerPred == taken && st.altTaken != taken && e.u < 3 {
			e.u++
		}
	}
	// Allocate a longer-history entry on a TAGE miss.
	mispred := st.Taken != taken
	if mispred && st.provider < len(p.tables)-1 {
		p.allocate(st.provider+1, pc, h, taken)
	}
	p.loopTrain(pc, taken)
}

func (p *Predictor) allocate(from int, pc int, h uint64, taken bool) {
	for t := from; t < len(p.tables); t++ {
		idx := p.index(t, pc, h)
		e := &p.tables[t][idx]
		if !e.used || e.u == 0 {
			*e = tagEntry{tag: p.tag(t, pc, h), used: true}
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			p.Allocs++
			return
		}
		e.u-- // gradually age out useful entries
	}
}

func (p *Predictor) loopLookup(pc int) *loopEntry {
	e := &p.loop[pc%len(p.loop)]
	if e.valid && e.pc == pc {
		return e
	}
	return nil
}

func (p *Predictor) loopTrain(pc int, taken bool) {
	e := &p.loop[pc%len(p.loop)]
	if !e.valid || e.pc != pc {
		if taken {
			*e = loopEntry{pc: pc, cnt: 1, valid: true}
		}
		return
	}
	if taken {
		e.cnt++
		if e.trip > 0 && e.cnt > e.trip {
			// Ran past the learned trip count: unlearn.
			e.trip = 0
			e.conf = 0
		}
		return
	}
	// Not taken: an iteration count has completed.
	p.LoopTrains++
	if e.trip == e.cnt && e.trip > 0 {
		if e.conf < 7 {
			e.conf++
		}
	} else {
		e.trip = e.cnt
		e.conf = 0
	}
	e.cnt = 0
}

// OnSquash restores a threadlet's speculative history to hist (the snapshot
// taken at the mispredicted branch) extended with the corrected outcome.
func (p *Predictor) OnSquash(tid int, hist uint64, taken bool) {
	p.hist[tid] = hist<<1 | b2u(taken)
}

// CopyRAS copies the return address stack of threadlet src into dst, so a
// freshly spawned threadlet predicts returns from the parent's call context.
func (p *Predictor) CopyRAS(dst, src int) {
	copy(p.ras[dst], p.ras[src])
	p.rasTop[dst] = p.rasTop[src]
}

// PredictIndirect returns the BTB target for an indirect jump at pc.
func (p *Predictor) PredictIndirect(pc int) (int, bool) {
	e := &p.btb[pc%len(p.btb)]
	if e.valid && e.pc == pc {
		p.BTBHits++
		return e.target, true
	}
	p.BTBMisses++
	return 0, false
}

// UpdateIndirect trains the BTB with a resolved indirect target.
func (p *Predictor) UpdateIndirect(pc, target int) {
	p.btb[pc%len(p.btb)] = btbEntry{pc: pc, target: target, valid: true}
}

// PushRAS pushes a return address for threadlet tid (on a call).
func (p *Predictor) PushRAS(tid, ret int) {
	p.RASPushes++
	s := p.ras[tid]
	p.rasTop[tid] = (p.rasTop[tid] + 1) % len(s)
	s[p.rasTop[tid]] = ret
}

// PopRAS pops a predicted return address for threadlet tid.
func (p *Predictor) PopRAS(tid int) int {
	p.RASPops++
	s := p.ras[tid]
	v := s[p.rasTop[tid]]
	p.rasTop[tid] = (p.rasTop[tid] - 1 + len(s)) % len(s)
	return v
}

// IsCall reports whether inst is a call (jump-and-link to a real register).
func IsCall(inst isa.Inst) bool {
	return (inst.Op == isa.JAL || inst.Op == isa.JALR) && inst.Rd != isa.X0
}

// IsReturn reports whether inst is a return (indirect jump through ra
// without linking).
func IsReturn(inst isa.Inst) bool {
	return inst.Op == isa.JALR && inst.Rd == isa.X0 && inst.Rs1 == isa.X(1)
}

func satUpdate(c int8, taken bool, min, max int8) int8 {
	if taken {
		if c < max {
			return c + 1
		}
		return c
	}
	if c > min {
		return c - 1
	}
	return c
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
