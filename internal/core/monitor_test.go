package core

import "testing"

func TestMonitorAllowsHealthyRegion(t *testing.T) {
	m := NewRegionMonitor(DefaultMonitorConfig())
	for i := 0; i < 100; i++ {
		if !m.Allow(42) {
			t.Fatal("healthy region disallowed")
		}
		m.OnCommit(42)
	}
	if m.Disablements != 0 {
		t.Errorf("disablements = %d, want 0", m.Disablements)
	}
}

func TestMonitorOverflowDisablesImmediately(t *testing.T) {
	m := NewRegionMonitor(DefaultMonitorConfig())
	m.Allow(1)
	m.OnSquash(1, SquashOverflow)
	if m.Allow(1) {
		t.Fatal("region allowed right after an overflow squash")
	}
	if !m.Disabled(1) {
		t.Error("Disabled() = false during cooldown")
	}
}

func TestMonitorCooldownExpires(t *testing.T) {
	cfg := DefaultMonitorConfig()
	cfg.BaseCooldown = 3
	m := NewRegionMonitor(cfg)
	m.OnSquash(1, SquashOverflow)
	for i := 0; i < 3; i++ {
		if m.Allow(1) {
			t.Fatalf("allowed during cooldown sighting %d", i)
		}
	}
	if !m.Allow(1) {
		t.Error("still disabled after cooldown expired")
	}
}

func TestMonitorEscalatingCooldown(t *testing.T) {
	cfg := DefaultMonitorConfig()
	cfg.BaseCooldown = 2
	m := NewRegionMonitor(cfg)
	drain := func() int {
		n := 0
		for !m.Allow(1) {
			n++
			if n > 10_000 {
				t.Fatal("cooldown never expired")
			}
		}
		return n
	}
	m.OnSquash(1, SquashOverflow)
	first := drain()
	m.OnSquash(1, SquashOverflow)
	second := drain()
	if second <= first {
		t.Errorf("cooldown did not escalate: %d then %d", first, second)
	}
}

func TestMonitorConflictsAccumulate(t *testing.T) {
	cfg := DefaultMonitorConfig() // threshold 8, conflict charge 2
	m := NewRegionMonitor(cfg)
	for i := 0; i < 3; i++ {
		m.OnSquash(5, SquashConflict)
		if m.Disabled(5) {
			t.Fatalf("disabled after only %d conflicts", i+1)
		}
	}
	m.OnSquash(5, SquashConflict) // 4th conflict: charge 8 >= threshold
	if !m.Disabled(5) {
		t.Error("not disabled after sustained conflicts")
	}
}

func TestMonitorSyncChargesLightly(t *testing.T) {
	// Wrong-path squashes are free; sync squashes charge one unit, so a
	// healthy region (many commits per loop exit) never trips, while a
	// low-trip region (constant exits, few commits) is de-selected (§6.4.3).
	m := NewRegionMonitor(DefaultMonitorConfig())
	for i := 0; i < 1000; i++ {
		m.OnSquash(1, SquashWrongPath)
	}
	if m.Disabled(1) {
		t.Error("wrong-path squashes disabled the region")
	}
	healthy := NewRegionMonitor(DefaultMonitorConfig())
	for i := 0; i < 200; i++ {
		for k := 0; k < 32; k++ {
			healthy.OnCommit(2)
		}
		healthy.OnSquash(2, SquashSync)
	}
	if healthy.Disabled(2) {
		t.Error("healthy loop with occasional exits was de-selected")
	}
	lowTrip := NewRegionMonitor(DefaultMonitorConfig())
	for i := 0; i < 50 && !lowTrip.Disabled(3); i++ {
		lowTrip.OnSquash(3, SquashSync)
		lowTrip.OnSquash(3, SquashSync)
	}
	if !lowTrip.Disabled(3) {
		t.Error("sync-storm region never de-selected")
	}
}

func TestMonitorTinyEpochsDeselect(t *testing.T) {
	m := NewRegionMonitor(DefaultMonitorConfig())
	for i := 0; i < 20 && !m.Disabled(4); i++ {
		m.OnEpochRetired(4, 5) // far below MinEpochInsts
	}
	if !m.Disabled(4) {
		t.Error("persistently tiny epochs never de-selected the region")
	}
	big := NewRegionMonitor(DefaultMonitorConfig())
	for i := 0; i < 1000; i++ {
		big.OnEpochRetired(5, 500)
	}
	if big.Disabled(5) {
		t.Error("large epochs charged the region")
	}
}

func TestMonitorCommitsDecayCharge(t *testing.T) {
	cfg := DefaultMonitorConfig() // decay every 8 commits
	m := NewRegionMonitor(cfg)
	for i := 0; i < 3; i++ {
		m.OnSquash(3, SquashConflict) // charge 6
	}
	// 16 commits decay 2 units: a further 2-charge squash stays below 8.
	for i := 0; i < 16; i++ {
		m.OnCommit(3)
	}
	m.OnSquash(3, SquashConflict)
	if m.Disabled(3) {
		t.Error("decayed charge still crossed the threshold")
	}
}

func TestMonitorDisabledPolicyOff(t *testing.T) {
	cfg := DefaultMonitorConfig()
	cfg.Enabled = false
	m := NewRegionMonitor(cfg)
	m.OnSquash(9, SquashOverflow)
	if !m.Allow(9) || m.Disabled(9) {
		t.Error("disabled monitor still gated spawning")
	}
}

func TestMonitorRegionsIndependent(t *testing.T) {
	m := NewRegionMonitor(DefaultMonitorConfig())
	m.OnSquash(1, SquashOverflow)
	if !m.Allow(2) {
		t.Error("region 2 punished for region 1's overflow")
	}
}

func TestSquashCauseStrings(t *testing.T) {
	for c := SquashCause(0); int(c) < NumSquashCauses; c++ {
		if c.String() == "unknown" {
			t.Errorf("cause %d has no name", c)
		}
	}
	if SquashCause(99).String() != "unknown" {
		t.Error("out-of-range cause not reported unknown")
	}
}
