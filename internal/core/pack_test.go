package core

import (
	"testing"

	"loopfrog/internal/isa"
)

func trainRegion(p *PackPredictor, id int64, iters int, iterSize uint64, stride int64, ivReg isa.Reg) [isa.NumRegs]uint64 {
	var regs [isa.NumRegs]uint64
	regs[ivReg] = 1000
	p.ObserveLiveIn(id, ivReg)
	p.ObserveWrite(id, ivReg)
	for i := 0; i < iters; i++ {
		p.TrainStride(id, &regs, nil)
		p.OnEpochRetired(id, iterSize, 1)
		regs[ivReg] += uint64(stride)
	}
	return regs
}

func TestPackDecideAfterTraining(t *testing.T) {
	cfg := DefaultPackConfig(1024)
	p := NewPackPredictor(cfg)
	regs := trainRegion(p, 7, 10, 100, 8, isa.X(5)) // 100-inst iterations, stride 8
	factor, predicted := p.Decide(7, &regs)
	// 100-inst epochs with a 1024 target: need factor 11 (capped at 32).
	if factor != 11 {
		t.Errorf("factor = %d, want 11 (ceil such that f*100 >= 1024)", factor)
	}
	wantIV := regs[isa.X(5)] + uint64(8*(factor-1))
	if predicted[isa.X(5)] != wantIV {
		t.Errorf("predicted IV = %d, want %d", predicted[isa.X(5)], wantIV)
	}
	// Non-IV registers are passed through unchanged.
	if predicted[isa.X(6)] != regs[isa.X(6)] {
		t.Error("non-IV register modified by prediction")
	}
	if p.Packed != 1 || p.MaxFactorSeen != factor {
		t.Errorf("stats: packed=%d maxFactor=%d", p.Packed, p.MaxFactorSeen)
	}
}

func TestPackNoPackingWhenEpochsAlreadyLarge(t *testing.T) {
	p := NewPackPredictor(DefaultPackConfig(1024))
	regs := trainRegion(p, 7, 10, 2000, 8, isa.X(5)) // epochs bigger than ROB
	factor, _ := p.Decide(7, &regs)
	if factor != 1 {
		t.Errorf("factor = %d, want 1 for 2000-inst epochs", factor)
	}
}

func TestPackRequiresTraining(t *testing.T) {
	p := NewPackPredictor(DefaultPackConfig(1024))
	var regs [isa.NumRegs]uint64
	p.ObserveLiveIn(7, isa.X(5))
	p.ObserveWrite(7, isa.X(5))
	p.TrainStride(7, &regs, nil)
	p.OnEpochRetired(7, 100, 1)
	if factor, _ := p.Decide(7, &regs); factor != 1 {
		t.Errorf("factor = %d before training completed, want 1", factor)
	}
}

func TestPackDisabled(t *testing.T) {
	cfg := DefaultPackConfig(1024)
	cfg.Enabled = false
	p := NewPackPredictor(cfg)
	regs := trainRegion(p, 7, 10, 100, 8, isa.X(5))
	if factor, _ := p.Decide(7, &regs); factor != 1 {
		t.Error("disabled predictor still packed")
	}
}

func TestPackUnpredictableIVBlocksPacking(t *testing.T) {
	cfg := DefaultPackConfig(1024)
	p := NewPackPredictor(cfg)
	var regs [isa.NumRegs]uint64
	iv := isa.X(5)
	p.ObserveLiveIn(7, iv)
	p.ObserveWrite(7, iv)
	// Erratic strides: confidence can never build.
	deltas := []uint64{3, 17, 5, 91, 2, 44, 13, 8, 77, 1}
	for _, d := range deltas {
		p.TrainStride(7, &regs, nil)
		p.OnEpochRetired(7, 100, 1)
		regs[iv] += d
	}
	if factor, _ := p.Decide(7, &regs); factor != 1 {
		t.Errorf("factor = %d with unpredictable IV, want 1", factor)
	}
}

func TestPackConfidencePenaltyAndRecovery(t *testing.T) {
	cfg := DefaultPackConfig(1024)
	p := NewPackPredictor(cfg)
	iv := isa.X(5)
	// Train confidently, then one erratic step, then retrain.
	regs := trainRegion(p, 8, 8, 100, 8, iv)
	if f, _ := p.Decide(8, &regs); f <= 1 {
		t.Fatal("not packing after clean training")
	}
	regs[iv] += 999 // conditional IV update breaks the stride once
	p.TrainStride(8, &regs, nil)
	regs[iv] += 8
	p.TrainStride(8, &regs, nil)
	if f, _ := p.Decide(8, &regs); f != 1 {
		t.Errorf("factor = %d immediately after stride break, want 1 (big penalty)", f)
	}
	for i := 0; i < 6; i++ {
		regs[iv] += 8
		p.TrainStride(8, &regs, nil)
	}
	if f, _ := p.Decide(8, &regs); f <= 1 {
		t.Error("confidence did not recover after retraining")
	}
}

func TestPackIVDetectionNeedsReadAndWrite(t *testing.T) {
	cfg := DefaultPackConfig(1024)
	p := NewPackPredictor(cfg)
	// x6 is written but never consumed across iterations (a body temporary):
	// it must not be treated as an IV even though it changes per detach.
	p.ObserveWrite(9, isa.X(6))
	p.ObserveLiveIn(9, isa.X(5))
	p.ObserveWrite(9, isa.X(5))
	var regs [isa.NumRegs]uint64
	for i := 0; i < 10; i++ {
		p.TrainStride(9, &regs, nil)
		p.OnEpochRetired(9, 50, 1)
		regs[isa.X(5)] += 4
		regs[isa.X(6)] += uint64(i * 13) // erratic, but not an IV
	}
	factor, predicted := p.Decide(9, &regs)
	if factor <= 1 {
		t.Fatalf("factor = %d, want packing (only x5 is an IV)", factor)
	}
	if predicted[isa.X(6)] != regs[isa.X(6)] {
		t.Error("non-IV erratic register was stride-advanced")
	}
	if predicted[isa.X(5)] != regs[isa.X(5)]+uint64(4*(factor-1)) {
		t.Error("IV not advanced correctly")
	}
}

func TestPackVerify(t *testing.T) {
	p := NewPackPredictor(DefaultPackConfig(1024))
	var a, b [isa.NumRegs]uint64
	if bad := p.Verify(&a, &b); len(bad) != 0 {
		t.Errorf("identical states reported mispredicts: %v", bad)
	}
	b[isa.X(3)] = 1
	b[isa.F(2)] = 2
	bad := p.Verify(&a, &b)
	if len(bad) != 2 || bad[0] != isa.X(3) || bad[1] != isa.F(2) {
		t.Errorf("Verify = %v, want [x3 f2]", bad)
	}
	if p.Mispredicts != 1 {
		t.Errorf("mispredicts = %d, want 1", p.Mispredicts)
	}
}

func TestPackEMATracksPhaseChange(t *testing.T) {
	cfg := DefaultPackConfig(1024)
	p := NewPackPredictor(cfg)
	// Phase 1: 50-inst iterations -> aggressive packing.
	regs := trainRegion(p, 11, 10, 50, 8, isa.X(5))
	f1, _ := p.Decide(11, &regs)
	if f1 <= 2 {
		t.Fatalf("phase-1 factor = %d, want aggressive packing of 50-inst iterations", f1)
	}
	// Phase 2: iterations grow to 600 insts. Each spawn uses the factor the
	// predictor chose, so the next sample is that many iterations later and
	// each retired epoch covers that many iterations.
	f := f1
	for i := 0; i < 12; i++ {
		regs[isa.X(5)] += uint64(8 * f)
		p.TrainStride(11, &regs, nil)
		p.OnEpochRetired(11, uint64(600*f), f)
		f, _ = p.Decide(11, &regs)
	}
	if f >= f1 {
		t.Errorf("factor did not shrink with larger iterations: %d -> %d", f1, f)
	}
	if f != 2 {
		t.Errorf("phase-2 factor = %d, want 2 (600*2 > 1024)", f)
	}
}

func TestPackMeanFactor(t *testing.T) {
	p := NewPackPredictor(DefaultPackConfig(1024))
	if p.MeanFactor() != 0 {
		t.Error("mean factor of no packs should be 0")
	}
	regs := trainRegion(p, 12, 10, 100, 8, isa.X(5))
	p.Decide(12, &regs)
	p.Decide(12, &regs)
	if got := p.MeanFactor(); got != 11 {
		t.Errorf("mean factor = %v, want 11", got)
	}
}
