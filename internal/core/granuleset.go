// Package core implements LoopFrog's microarchitectural contribution from
// §4 of the paper: the Speculative State Buffer (SSB), the granule-level
// conflict detector, the iteration-packing predictors, and the dynamic
// region monitor. The out-of-order pipeline in internal/cpu composes these
// into the full LoopFrog machine.
package core

// GranuleSet tracks a set of granule IDs (addresses right-shifted by the
// granule size). The conflict detector keeps one read set and one write set
// per threadlet (§4.2). Two implementations exist: an exact set, which the
// paper's headline configuration idealises ("No false positives modeled"),
// and a Bloom filter matching the proposed hardware.
type GranuleSet interface {
	// Add inserts a granule.
	Add(g uint64)
	// Contains reports (possibly conservatively) whether g was inserted.
	Contains(g uint64) bool
	// Clear empties the set.
	Clear()
	// Len returns the number of inserted granules (insertions may exceed
	// distinct granules for the Bloom implementation).
	Len() int
}

// ExactSet is a precise granule set: no false positives, no false negatives.
type ExactSet struct {
	m map[uint64]struct{}
}

// NewExactSet returns an empty exact set.
func NewExactSet() *ExactSet {
	return &ExactSet{m: make(map[uint64]struct{})}
}

// Add implements GranuleSet.
func (s *ExactSet) Add(g uint64) { s.m[g] = struct{}{} }

// Contains implements GranuleSet.
func (s *ExactSet) Contains(g uint64) bool {
	_, ok := s.m[g]
	return ok
}

// Clear implements GranuleSet.
func (s *ExactSet) Clear() {
	// clear() keeps the map's buckets allocated, so the set is reused across
	// epochs instead of reallocating at every squash/retire.
	clear(s.m)
}

// Len implements GranuleSet.
func (s *ExactSet) Len() int { return len(s.m) }

// BloomSet is a Bloom-filter granule set as proposed for the hardware
// implementation (§4.2, after Swarm): false positives are possible (safe —
// they can only cause unnecessary squashes), false negatives are not.
type BloomSet struct {
	bits   []uint64
	mask   uint64
	hashes int
	n      int
}

// NewBloomSet returns a Bloom filter with the given number of bits (rounded
// up to a power of two, minimum 64) and hash functions.
func NewBloomSet(bits, hashes int) *BloomSet {
	size := 64
	for size < bits {
		size <<= 1
	}
	if hashes < 1 {
		hashes = 1
	}
	return &BloomSet{
		bits:   make([]uint64, size/64),
		mask:   uint64(size - 1),
		hashes: hashes,
	}
}

func (s *BloomSet) hash(g uint64, i int) uint64 {
	// Two independent mixes combined per Kirsch-Mitzenmacher.
	h1 := g * 0x9e3779b97f4a7c15
	h1 ^= h1 >> 32
	h2 := g*0xc2b2ae3d27d4eb4f + 0x165667b19e3779f9
	h2 ^= h2 >> 29
	return (h1 + uint64(i)*h2) & s.mask
}

// Add implements GranuleSet.
func (s *BloomSet) Add(g uint64) {
	for i := 0; i < s.hashes; i++ {
		b := s.hash(g, i)
		s.bits[b/64] |= 1 << (b % 64)
	}
	s.n++
}

// Contains implements GranuleSet.
func (s *BloomSet) Contains(g uint64) bool {
	for i := 0; i < s.hashes; i++ {
		b := s.hash(g, i)
		if s.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear implements GranuleSet.
func (s *BloomSet) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.n = 0
}

// Len implements GranuleSet.
func (s *BloomSet) Len() int { return s.n }
