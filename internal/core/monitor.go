package core

// RegionMonitor implements the dynamic side of loop selection (§5.1): the
// microarchitecture may de-select a region at run time by treating its hints
// as NOPs, which bounds the damage of unprofitable parallelisation (frequent
// conflicts, SSB overflows, low trip counts) to two NOPs per iteration.
//
// The policy is a simple exponential backoff: each squash charges the
// region; overflow squashes charge more (they recur deterministically).
// When the charge crosses a threshold, spawning is disabled for a cooldown
// measured in detach sightings, doubling on each consecutive disablement.

// SquashCause classifies why a threadlet was squashed.
type SquashCause int

// Squash causes.
const (
	SquashConflict       SquashCause = iota // RAW order violation (§4.2)
	SquashOverflow                          // SSB slice overflow (§4.1.2)
	SquashSync                              // loop exited; successors misspeculated
	SquashPackMispredict                    // packed IV prediction failed (§4.3)
	SquashWrongPath                         // spawned under a branch misprediction
	SquashExternal                          // incompatible external snoop (§4.1.4)
	numSquashCauses
)

// NumSquashCauses is the number of distinct squash causes.
const NumSquashCauses = int(numSquashCauses)

// String names the cause.
func (c SquashCause) String() string {
	switch c {
	case SquashConflict:
		return "conflict"
	case SquashOverflow:
		return "overflow"
	case SquashSync:
		return "sync"
	case SquashPackMispredict:
		return "pack-mispredict"
	case SquashWrongPath:
		return "wrong-path"
	case SquashExternal:
		return "external"
	}
	return "unknown"
}

// MonitorConfig tunes the region monitor.
type MonitorConfig struct {
	// Enabled turns dynamic de-selection on.
	Enabled bool
	// MinEpochInsts is the committed-epoch size below which a retired
	// (unpacked) epoch is considered too small to repay its threadlet: the
	// "very tight inner loops" and "low iteration count" cases of §5.1 and
	// §6.4.3, charged like a light squash.
	MinEpochInsts int
	// Threshold is the squash charge at which a region is disabled.
	Threshold int
	// BaseCooldown is the number of detach sightings a region stays
	// disabled the first time; it doubles per consecutive disablement up to
	// MaxCooldown.
	BaseCooldown, MaxCooldown int
	// DecayEvery commits decay one unit of charge.
	DecayEvery int
}

// DefaultMonitorConfig returns the headline policy.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		Enabled:       true,
		MinEpochInsts: 24,
		Threshold:     8,
		BaseCooldown:  64,
		MaxCooldown:   4096,
		DecayEvery:    8,
	}
}

type regionHealth struct {
	charge      int
	cooldown    int // remaining disabled detach sightings
	nextCd      int // cooldown length for the next disablement
	commits     int
	disabled    uint64
	everSpawned bool
}

// RegionMonitor tracks per-region profitability.
type RegionMonitor struct {
	cfg     MonitorConfig
	regions map[int64]*regionHealth

	// Stats.
	Disablements uint64
}

// NewRegionMonitor returns a monitor with the given policy.
func NewRegionMonitor(cfg MonitorConfig) *RegionMonitor {
	return &RegionMonitor{cfg: cfg, regions: make(map[int64]*regionHealth)}
}

func (m *RegionMonitor) region(id int64) *regionHealth {
	r := m.regions[id]
	if r == nil {
		r = &regionHealth{nextCd: m.cfg.BaseCooldown}
		m.regions[id] = r
	}
	return r
}

// Allow reports whether the machine may spawn for region id at this detach.
// Each call while disabled consumes one sighting of the cooldown.
func (m *RegionMonitor) Allow(id int64) bool {
	if !m.cfg.Enabled {
		return true
	}
	r := m.region(id)
	if r.cooldown > 0 {
		r.cooldown--
		if r.cooldown == 0 && r.nextCd < m.cfg.MaxCooldown {
			// Re-enable tentatively; next disablement lasts longer.
		}
		return false
	}
	r.everSpawned = true
	return true
}

// OnSquash charges a region for a squash of one of its threadlets.
func (m *RegionMonitor) OnSquash(id int64, cause SquashCause) {
	if !m.cfg.Enabled {
		return
	}
	r := m.region(id)
	switch cause {
	case SquashOverflow:
		r.charge += m.cfg.Threshold // immediate disable: overflow recurs
	case SquashConflict, SquashPackMispredict, SquashExternal:
		r.charge += 2
	case SquashSync:
		// Loop exits are expected, but a region whose threadlets are mostly
		// cancelled at the exit (low trip counts, §6.4.3) never repays the
		// spawns; a light charge lets commits outvote it in healthy loops.
		r.charge++
	case SquashWrongPath:
		// Covered by the branch-misprediction machinery; no charge.
	}
	if r.charge >= m.cfg.Threshold {
		r.charge = 0
		r.cooldown = r.nextCd
		if r.nextCd < m.cfg.MaxCooldown {
			r.nextCd *= 2
		}
		r.disabled++
		m.Disablements++
	}
}

// OnEpochRetired reports a retired epoch's committed instruction count;
// regions whose epochs are persistently tiny get charged and eventually
// de-selected (treating their hints as NOPs costs only two NOPs per
// iteration, §5.1).
func (m *RegionMonitor) OnEpochRetired(id int64, insts uint64) {
	if !m.cfg.Enabled || insts >= uint64(m.cfg.MinEpochInsts) {
		return
	}
	r := m.region(id)
	r.charge += 2
	if r.charge >= m.cfg.Threshold {
		r.charge = 0
		r.cooldown = r.nextCd
		if r.nextCd < m.cfg.MaxCooldown {
			r.nextCd *= 2
		}
		r.disabled++
		m.Disablements++
	}
}

// OnCommit credits a region for a successfully committed threadlet.
func (m *RegionMonitor) OnCommit(id int64) {
	if !m.cfg.Enabled {
		return
	}
	r := m.region(id)
	r.commits++
	if m.cfg.DecayEvery > 0 && r.commits%m.cfg.DecayEvery == 0 {
		if r.charge > 0 {
			r.charge--
		}
		// Sustained success also walks the escalation back down.
		if r.commits%(m.cfg.DecayEvery*8) == 0 && r.nextCd > m.cfg.BaseCooldown {
			r.nextCd /= 2
		}
	}
}

// Clone returns a deep copy sharing no mutable state with m: per-region
// health records are copied, so the clone and the original can be driven by
// independent machines concurrently. Checkpoints carry cloned monitors as
// warm LoopFrog-engine state for sampled windows.
func (m *RegionMonitor) Clone() *RegionMonitor {
	c := &RegionMonitor{
		cfg:          m.cfg,
		regions:      make(map[int64]*regionHealth, len(m.regions)),
		Disablements: m.Disablements,
	}
	for id, r := range m.regions {
		cp := *r
		c.regions[id] = &cp
	}
	return c
}

// Disabled reports whether the region is currently in cooldown.
func (m *RegionMonitor) Disabled(id int64) bool {
	if !m.cfg.Enabled {
		return false
	}
	return m.region(id).cooldown > 0
}
