package core

import (
	"fmt"

	"loopfrog/internal/mem"
)

// SSBConfig sizes the Speculative State Buffer (§4.1, Table 1).
type SSBConfig struct {
	// Slices is the number of threadlet contexts (one slice each).
	Slices int
	// SliceBytes is the data capacity of each slice (Table 1: 8 KiB total
	// over 4 slices = 2 KiB each).
	SliceBytes int
	// LineBytes is the allocation unit (Table 1: 32 B).
	LineBytes int
	// GranuleBytes is the conflict-tracking unit (Table 1: 4 B).
	GranuleBytes int
	// Assoc is the set associativity of each slice; 0 means fully
	// associative ("associativity not modelled" in the headline config).
	Assoc int
	// VictimEntries is the size of the shared fully-associative victim
	// cache appended to the slices (§4.1.2, §6.6); 0 disables it.
	VictimEntries int
	// ReadLatency and WriteLatency are access latencies in cycles
	// (Table 1: 3-cycle reads including the L1D lookup, 1-cycle writes).
	ReadLatency  int64
	WriteLatency int64
	// FlushCyclesPerLine models the background drain of a committed slice
	// into the memory system using spare bandwidth.
	FlushCyclesPerLine int64
}

// DefaultSSBConfig mirrors Table 1.
func DefaultSSBConfig() SSBConfig {
	return SSBConfig{
		Slices:             4,
		SliceBytes:         2 << 10,
		LineBytes:          32,
		GranuleBytes:       4,
		Assoc:              0,
		VictimEntries:      0,
		ReadLatency:        3,
		WriteLatency:       1,
		FlushCyclesPerLine: 1,
	}
}

// SSBStats counts SSB activity.
type SSBStats struct {
	Reads          uint64
	Writes         uint64
	FillReads      uint64 // partial-granule writes that forced a read (§4.1.1)
	ForwardedReads uint64 // reads served (in part) from an older slice
	Overflows      uint64
	LinesFlushed   uint64
	VictimInserts  uint64
	VictimHits     uint64
	Squashes       uint64
}

type ssbLine struct {
	tag     uint64 // line-aligned address >> lineShift
	valid   bool
	mask    uint64 // valid-granule bitmask (bit g = granule g present)
	data    []byte
	lastUse int64
}

type ssbSlice struct {
	sets  [][]ssbLine
	lines int // current line count (for the per-slice counter of §4.1.2)
}

type victimLine struct {
	tid  int
	line ssbLine
}

// SSB is the Speculative State Buffer: per-threadlet slices of speculatively
// written memory, a combining read path implementing the versioning logic of
// §4.1.3 (figure 5), and commit/squash operations. The S_arch counter and
// the slice ordering are owned by the caller, which passes an oldest-first
// chain of live threadlet IDs into Read.
//
// Functionally, a slice's contents are merged into the backing memory the
// moment its threadlet becomes architectural (Merge); the paper's lazy
// background flush is modelled in time by the FlushCycles return value. This
// keeps committed data visible to coherence immediately, which is the
// behaviour §4.1.4 requires observably.
type SSB struct {
	cfg       SSBConfig
	backing   *mem.Memory
	slices    []ssbSlice
	victim    []victimLine
	granShift uint
	lineShift uint
	gpl       int // granules per line
	Stats     SSBStats
}

// NewSSB builds an SSB over the given backing memory.
func NewSSB(cfg SSBConfig, backing *mem.Memory) *SSB {
	if cfg.LineBytes%cfg.GranuleBytes != 0 {
		panic(fmt.Sprintf("core: line bytes %d not a multiple of granule bytes %d", cfg.LineBytes, cfg.GranuleBytes))
	}
	s := &SSB{cfg: cfg, backing: backing}
	for v := cfg.GranuleBytes; v > 1; v >>= 1 {
		s.granShift++
	}
	for v := cfg.LineBytes; v > 1; v >>= 1 {
		s.lineShift++
	}
	s.gpl = cfg.LineBytes / cfg.GranuleBytes
	linesPerSlice := cfg.SliceBytes / cfg.LineBytes
	assoc := cfg.Assoc
	if assoc <= 0 || assoc > linesPerSlice {
		assoc = linesPerSlice // fully associative
	}
	numSets := linesPerSlice / assoc
	if numSets < 1 {
		numSets = 1
	}
	s.slices = make([]ssbSlice, cfg.Slices)
	for i := range s.slices {
		sets := make([][]ssbLine, numSets)
		for j := range sets {
			sets[j] = make([]ssbLine, assoc)
		}
		s.slices[i] = ssbSlice{sets: sets}
	}
	return s
}

// GranuleOf returns the granule ID containing addr.
func (s *SSB) GranuleOf(addr uint64) uint64 { return addr >> s.granShift }

// GranulesOf returns the granule IDs overlapped by an access.
func (s *SSB) GranulesOf(addr uint64, size int) []uint64 {
	first := addr >> s.granShift
	last := (addr + uint64(size) - 1) >> s.granShift
	out := make([]uint64, 0, last-first+1)
	for g := first; g <= last; g++ {
		out = append(out, g)
	}
	return out
}

// AppendGranules appends the granule IDs overlapped by an access to dst and
// returns the extended slice; hot paths pass a reusable scratch buffer to
// avoid the per-access allocation of GranulesOf.
func (s *SSB) AppendGranules(dst []uint64, addr uint64, size int) []uint64 {
	first := addr >> s.granShift
	last := (addr + uint64(size) - 1) >> s.granShift
	for g := first; g <= last; g++ {
		dst = append(dst, g)
	}
	return dst
}

// Lines returns the number of lines currently held by a slice.
func (s *SSB) Lines(tid int) int { return s.slices[tid].lines }

func (s *SSB) set(sl *ssbSlice, lineTag uint64) []ssbLine {
	return sl.sets[lineTag%uint64(len(sl.sets))]
}

// holdsLine reports whether tid's slice (or its victim entries) holds a valid
// line with this tag, without touching any stats counters.
func (s *SSB) holdsLine(tid int, lineTag uint64) bool {
	set := s.set(&s.slices[tid], lineTag)
	for i := range set {
		if set[i].valid && set[i].tag == lineTag {
			return true
		}
	}
	for i := range s.victim {
		if s.victim[i].tid == tid && s.victim[i].line.valid && s.victim[i].line.tag == lineTag {
			return true
		}
	}
	return false
}

func (s *SSB) lookup(tid int, lineTag uint64) *ssbLine {
	set := s.set(&s.slices[tid], lineTag)
	for i := range set {
		if set[i].valid && set[i].tag == lineTag {
			return &set[i]
		}
	}
	for i := range s.victim {
		if s.victim[i].tid == tid && s.victim[i].line.valid && s.victim[i].line.tag == lineTag {
			s.Stats.VictimHits++
			return &s.victim[i].line
		}
	}
	return nil
}

// WriteResult describes the outcome of a speculative write.
type WriteResult struct {
	// Granules are the granule IDs now (fully) written by this threadlet.
	Granules []uint64
	// FillGranules are granules that required a read-for-fill because the
	// store covered them only partially; per §4.1.1 these reads enter the
	// threadlet's read set and can cause false-sharing conflicts.
	FillGranules []uint64
	// Overflow is set when the slice could not accept the line; the
	// threadlet must be squashed (or stalled) per §4.1.2.
	Overflow bool
}

// Write performs a speculative store of size bytes of v at addr for
// threadlet tid. chain is the oldest-first list of live threadlets ending in
// tid, used to source read-for-fill data.
func (s *SSB) Write(tid int, addr uint64, size int, v uint64, chain []int, now int64) WriteResult {
	s.Stats.Writes++
	lineTag := addr >> s.lineShift
	endTag := (addr + uint64(size) - 1) >> s.lineShift
	if endTag != lineTag {
		// LFISA accesses are naturally aligned, so they never straddle a
		// 32-byte-or-larger line.
		panic(fmt.Sprintf("core: store at %#x size %d straddles SSB lines", addr, size))
	}
	ln := s.lookup(tid, lineTag)
	if ln == nil {
		ln = s.allocate(tid, lineTag, now)
		if ln == nil {
			s.Stats.Overflows++
			return WriteResult{Overflow: true}
		}
	}
	ln.lastUse = now

	res := WriteResult{Granules: s.GranulesOf(addr, size)}
	// Fill partially covered granules with up-to-date older data first.
	if size < s.cfg.GranuleBytes {
		g := addr >> s.granShift
		gOff := int(g-(lineTag<<(s.lineShift-s.granShift))) * s.cfg.GranuleBytes
		gAddr := g << s.granShift
		if ln.mask&(1<<uint(gOff/s.cfg.GranuleBytes)) == 0 {
			// Granule absent: read-for-fill from older threadlets/memory.
			fill := s.readBytes(chain[:len(chain)-1], gAddr, s.cfg.GranuleBytes)
			copy(ln.data[gOff:gOff+s.cfg.GranuleBytes], fill)
			s.Stats.FillReads++
			res.FillGranules = append(res.FillGranules, g)
		}
	}
	// Store the payload bytes and mark granules valid.
	base := lineTag << s.lineShift
	for i := 0; i < size; i++ {
		ln.data[addr-base+uint64(i)] = byte(v >> (8 * i))
	}
	for _, g := range res.Granules {
		gIdx := uint(g - (lineTag << (s.lineShift - s.granShift)))
		ln.mask |= 1 << gIdx
	}
	return res
}

func (s *SSB) allocate(tid int, lineTag uint64, now int64) *ssbLine {
	sl := &s.slices[tid]
	set := s.set(sl, lineTag)
	// Free way?
	for i := range set {
		if !set[i].valid {
			set[i] = ssbLine{tag: lineTag, valid: true, data: make([]byte, s.cfg.LineBytes), lastUse: now}
			sl.lines++
			return &set[i]
		}
	}
	// Set conflict: move the LRU way to the victim cache if there is room.
	if s.cfg.VictimEntries > 0 {
		lru := 0
		for i := range set {
			if set[i].lastUse < set[lru].lastUse {
				lru = i
			}
		}
		if s.victimInsert(tid, set[lru]) {
			set[lru] = ssbLine{tag: lineTag, valid: true, data: make([]byte, s.cfg.LineBytes), lastUse: now}
			return &set[lru]
		}
	}
	return nil
}

func (s *SSB) victimInsert(tid int, ln ssbLine) bool {
	for i := range s.victim {
		if !s.victim[i].line.valid {
			s.victim[i] = victimLine{tid: tid, line: ln}
			s.Stats.VictimInserts++
			return true
		}
	}
	if len(s.victim) < s.cfg.VictimEntries {
		s.victim = append(s.victim, victimLine{tid: tid, line: ln})
		s.Stats.VictimInserts++
		return true
	}
	return false
}

// Read performs a speculative load of size bytes at addr for the youngest
// threadlet in chain. chain lists live threadlet IDs oldest-first, ending
// with the reading threadlet; per §4.1.3 the newest value for each granule
// among {memory, chain[0], ..., chain[len-1]} is returned, and younger
// threadlets (not in chain) are never consulted. forwarded reports whether
// any byte came from a slice rather than backing memory.
func (s *SSB) Read(chain []int, addr uint64, size int) (v uint64, forwarded bool) {
	s.Stats.Reads++
	lineTag := addr >> s.lineShift
	// Fast path: no slice in the chain holds the line at all (always true for
	// a purely architectural run, and for most reads elsewhere) — the value
	// comes straight from backing memory with no byte assembly.
	held := false
	for _, tid := range chain {
		if s.holdsLine(tid, lineTag) {
			held = true
			break
		}
	}
	if !held {
		return s.backing.ReadAny(addr, size), false
	}
	bytes := s.readBytes(chain, addr, size)
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(bytes[i])
	}
	fwd := false
	// Re-derive forwarding for stats: any granule present in any chain slice.
	for _, g := range s.GranulesOf(addr, size) {
		gIdx := uint(g - (lineTag << (s.lineShift - s.granShift)))
		for _, tid := range chain {
			if ln := s.lookup(tid, lineTag); ln != nil && ln.mask&(1<<gIdx) != 0 {
				fwd = true
			}
		}
	}
	if fwd {
		s.Stats.ForwardedReads++
	}
	return v, fwd
}

// readBytes assembles the newest visible bytes for [addr, addr+size) from
// the chain's slices (youngest-first priority) backed by memory.
func (s *SSB) readBytes(chain []int, addr uint64, size int) []byte {
	out := make([]byte, size)
	lineTag := addr >> s.lineShift
	base := lineTag << s.lineShift
	for _, g := range s.GranulesOf(addr, size) {
		gIdx := uint(g - (lineTag << (s.lineShift - s.granShift)))
		gAddr := g << s.granShift
		// Intersection of the access with this granule.
		lo, hi := addr, addr+uint64(size)
		if gAddr > lo {
			lo = gAddr
		}
		if end := gAddr + uint64(s.cfg.GranuleBytes); end < hi {
			hi = end
		}
		served := false
		for i := len(chain) - 1; i >= 0; i-- { // youngest chain member first
			ln := s.lookup(chain[i], lineTag)
			if ln != nil && ln.mask&(1<<gIdx) != 0 {
				copy(out[lo-addr:hi-addr], ln.data[lo-base:hi-base])
				served = true
				break
			}
		}
		if !served {
			copy(out[lo-addr:hi-addr], s.backing.ReadBytes(lo, int(hi-lo)))
		}
	}
	return out
}

// Merge commits threadlet tid's slice into backing memory (the threadlet
// became architectural; §4.1.4's atomic commit). It returns the number of
// lines flushed; the caller charges FlushCyclesPerLine per line of
// background drain before the slice's context may be reused.
func (s *SSB) Merge(tid int) int {
	sl := &s.slices[tid]
	flushed := 0
	mergeLine := func(ln *ssbLine) {
		if !ln.valid {
			return
		}
		base := ln.tag << s.lineShift
		for g := 0; g < s.gpl; g++ {
			if ln.mask&(1<<uint(g)) == 0 {
				continue
			}
			off := g * s.cfg.GranuleBytes
			s.backing.WriteBytes(base+uint64(off), ln.data[off:off+s.cfg.GranuleBytes])
		}
		ln.valid = false
		flushed++
	}
	for si := range sl.sets {
		for wi := range sl.sets[si] {
			mergeLine(&sl.sets[si][wi])
		}
	}
	for i := range s.victim {
		if s.victim[i].tid == tid {
			mergeLine(&s.victim[i].line)
		}
	}
	sl.lines = 0
	s.Stats.LinesFlushed += uint64(flushed)
	return flushed
}

// Squash bulk-invalidates threadlet tid's slice (§4.1.2).
func (s *SSB) Squash(tid int) {
	sl := &s.slices[tid]
	for si := range sl.sets {
		for wi := range sl.sets[si] {
			sl.sets[si][wi].valid = false
		}
	}
	for i := range s.victim {
		if s.victim[i].tid == tid {
			s.victim[i].line.valid = false
		}
	}
	sl.lines = 0
	s.Stats.Squashes++
}

// HoldsAddr reports whether threadlet tid's slice holds a valid granule
// covering addr; used by external-snoop conflict checks and tests.
func (s *SSB) HoldsAddr(tid int, addr uint64) bool {
	lineTag := addr >> s.lineShift
	ln := s.lookup(tid, lineTag)
	if ln == nil {
		return false
	}
	gIdx := uint(s.GranuleOf(addr) - (lineTag << (s.lineShift - s.granShift)))
	return ln.mask&(1<<gIdx) != 0
}

// Config returns the SSB configuration.
func (s *SSB) Config() SSBConfig { return s.cfg }
