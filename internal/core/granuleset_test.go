package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactSetBasics(t *testing.T) {
	s := NewExactSet()
	if s.Contains(5) || s.Len() != 0 {
		t.Error("fresh set not empty")
	}
	s.Add(5)
	s.Add(5)
	s.Add(7)
	if !s.Contains(5) || !s.Contains(7) || s.Contains(6) {
		t.Error("membership wrong")
	}
	if s.Len() != 2 {
		t.Errorf("len = %d, want 2", s.Len())
	}
	s.Clear()
	if s.Contains(5) || s.Len() != 0 {
		t.Error("clear failed")
	}
}

func TestBloomSetNoFalseNegatives(t *testing.T) {
	f := func(granules []uint64) bool {
		s := NewBloomSet(4096, 4)
		for _, g := range granules {
			s.Add(g)
		}
		for _, g := range granules {
			if !s.Contains(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBloomSetFalsePositiveRateReasonable(t *testing.T) {
	s := NewBloomSet(4096, 4)
	rng := rand.New(rand.NewSource(3))
	inserted := make(map[uint64]bool)
	for i := 0; i < 128; i++ { // well under capacity
		g := rng.Uint64()
		s.Add(g)
		inserted[g] = true
	}
	fp := 0
	const probes = 10_000
	for i := 0; i < probes; i++ {
		g := rng.Uint64()
		if inserted[g] {
			continue
		}
		if s.Contains(g) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Errorf("false positive rate %.3f too high for 128 entries in 4096 bits", rate)
	}
}

func TestBloomSetClear(t *testing.T) {
	s := NewBloomSet(256, 2)
	s.Add(42)
	s.Clear()
	if s.Contains(42) {
		t.Error("clear left bits set")
	}
	if s.Len() != 0 {
		t.Error("clear did not reset count")
	}
}

func TestBloomSetSizeRounding(t *testing.T) {
	// 100 bits rounds up to 128; zero hashes becomes one.
	s := NewBloomSet(100, 0)
	s.Add(1)
	if !s.Contains(1) {
		t.Error("degenerate config broken")
	}
}
