package core

import (
	"testing"
	"testing/quick"
)

func exactCD(n int) *ConflictDetector {
	return NewConflictDetector(n, 4, func() GranuleSet { return NewExactSet() })
}

func TestConflictBasicRAWViolation(t *testing.T) {
	cd := exactCD(4)
	// T1 reads granule 5 before T0 writes it: violation, squash T1.
	cd.OnRead(1, []uint64{5})
	victim, squash := cd.OnWrite(0, []uint64{5}, []int{1, 2, 3})
	if !squash || victim != 1 {
		t.Errorf("OnWrite = (%d,%v), want (1,true)", victim, squash)
	}
	if cd.Conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", cd.Conflicts)
	}
}

func TestConflictNoViolationDisjointGranules(t *testing.T) {
	cd := exactCD(4)
	cd.OnRead(1, []uint64{5})
	if _, squash := cd.OnWrite(0, []uint64{6}, []int{1, 2, 3}); squash {
		t.Error("disjoint granules reported a conflict")
	}
}

func TestConflictOwnWriteMasksRead(t *testing.T) {
	// SPECULATIVEREAD: granules in the threadlet's own write set never enter
	// its read set — forwarding within the threadlet is always correct.
	cd := exactCD(4)
	cd.OnWrite(1, []uint64{5}, []int{2, 3})
	cd.OnRead(1, []uint64{5})
	if _, squash := cd.OnWrite(0, []uint64{5}, []int{1, 2, 3}); squash {
		t.Error("read of own forwarded value triggered a squash")
	}
}

func TestConflictInterveningWriteMasksFwd(t *testing.T) {
	// Algorithm 1's Fwd subtraction: T0 writes g; T1 also wrote g; T2 read g.
	// T2's read observed T1's value (or will conflict with T1's own check),
	// so T0's write must NOT squash T2.
	cd := exactCD(4)
	cd.OnWrite(1, []uint64{9}, []int{2, 3})
	cd.OnRead(2, []uint64{9})
	if victim, squash := cd.OnWrite(0, []uint64{9}, []int{1, 2, 3}); squash {
		t.Errorf("masked forward squashed T%d", victim)
	}
	// But T1's own (later) write to g must catch T2.
	if victim, squash := cd.OnWrite(1, []uint64{9}, []int{2, 3}); !squash || victim != 2 {
		t.Errorf("intervening writer's check = (%d,%v), want (2,true)", victim, squash)
	}
}

func TestConflictOldestViolatorWins(t *testing.T) {
	cd := exactCD(4)
	cd.OnRead(1, []uint64{3})
	cd.OnRead(2, []uint64{3})
	victim, squash := cd.OnWrite(0, []uint64{3}, []int{1, 2, 3})
	if !squash || victim != 1 {
		t.Errorf("victim = %d, want oldest violator 1", victim)
	}
}

func TestConflictMultiGranuleWrite(t *testing.T) {
	cd := exactCD(4)
	cd.OnRead(2, []uint64{11})
	victim, squash := cd.OnWrite(1, []uint64{10, 11}, []int{2, 3})
	if !squash || victim != 2 {
		t.Errorf("multi-granule check = (%d,%v), want (2,true)", victim, squash)
	}
}

func TestConflictClear(t *testing.T) {
	cd := exactCD(4)
	cd.OnRead(1, []uint64{5})
	cd.Clear(1)
	if _, squash := cd.OnWrite(0, []uint64{5}, []int{1}); squash {
		t.Error("cleared read set still triggers conflicts")
	}
	r, w := cd.SetSizes(1)
	if r != 0 || w != 0 {
		t.Errorf("sizes after clear = (%d,%d), want (0,0)", r, w)
	}
}

func TestConflictSnoopHelpers(t *testing.T) {
	cd := exactCD(2)
	cd.OnRead(1, []uint64{7})
	cd.OnWrite(1, []uint64{8}, nil)
	if !cd.ReadSetContains(1, 7) || cd.ReadSetContains(1, 8) {
		t.Error("ReadSetContains wrong")
	}
	if !cd.WriteSetContains(1, 8) || cd.WriteSetContains(1, 7) {
		t.Error("WriteSetContains wrong")
	}
}

// TestConflictSequentialOrderNeverSquashes: when accesses happen in true
// epoch order (every read after all older writes, with forwarding), no
// squash may occur, whatever the overlap pattern.
func TestConflictSequentialOrderNeverSquashes(t *testing.T) {
	f := func(writes, reads []uint8) bool {
		cd := exactCD(3)
		for _, w := range writes {
			if _, squash := cd.OnWrite(0, []uint64{uint64(w)}, []int{1, 2}); squash {
				return false
			}
		}
		// T1 reads after all T0 writes performed: it read fresh values, and
		// the SSB forwarding means its reads ARE recorded — but no further
		// T0 write arrives, so no squash can occur.
		for _, r := range reads {
			cd.OnRead(1, []uint64{uint64(r)})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBloomConflictDetectorConservative(t *testing.T) {
	// The Bloom-filter detector may report extra conflicts but never misses
	// a real one.
	cdE := exactCD(4)
	cdB := NewConflictDetector(4, 4, func() GranuleSet { return NewBloomSet(4096, 4) })
	granules := []uint64{1, 100, 4096, 99999, 123456789}
	for _, g := range granules {
		cdE.OnRead(1, []uint64{g})
		cdB.OnRead(1, []uint64{g})
	}
	for _, g := range granules {
		_, se := cdE.OnWrite(0, []uint64{g}, []int{1})
		_, sb := cdB.OnWrite(0, []uint64{g}, []int{1})
		if se && !sb {
			t.Fatalf("Bloom detector missed a real conflict on granule %d", g)
		}
	}
}
