package core

import "loopfrog/internal/isa"

// This file implements iteration packing (§4.3): three cooperating
// predictors trained on the first iterations of each parallel region.
//
//  1. An exponential-moving-average epoch-size estimator, used to pick a
//     packing factor P — the smallest P with P × S above the target size
//     (the paper targets the ROB size).
//  2. An induction-variable detector: a register is treated as an IV when it
//     is in both the cumulative read and write sets across iterations (it
//     changes, and the new value is consumed later).
//  3. A strided value predictor with a saturating confidence counter (small
//     reward on success, large penalty on failure; values reset when
//     confidence hits zero). Packing happens only when every IV register is
//     confidently predictable.

// PackConfig tunes iteration packing.
type PackConfig struct {
	// Enabled turns packing on (§6.5 evaluates both settings).
	Enabled bool
	// TargetSize is the desired packed-epoch size in instructions; the
	// paper uses the ROB size.
	TargetSize int
	// Alpha is the EMA coefficient for the size estimate, 0 < Alpha < 1:
	// S <- Alpha*S + (1-Alpha)*I.
	Alpha float64
	// TrainIters is how many detaches to observe before packing.
	TrainIters int
	// ConfMax caps the stride confidence counter; ConfThreshold is the
	// minimum confidence to predict; MissPenalty is subtracted on a
	// misprediction.
	ConfMax, ConfThreshold, MissPenalty int
	// MaxFactor caps the packing factor (the paper observes up to 25x).
	MaxFactor int
}

// DefaultPackConfig returns the configuration used for the headline runs.
func DefaultPackConfig(robSize int) PackConfig {
	return PackConfig{
		Enabled:       true,
		TargetSize:    robSize,
		Alpha:         0.75,
		TrainIters:    4,
		ConfMax:       7,
		ConfThreshold: 3,
		MissPenalty:   4,
		MaxFactor:     32,
	}
}

type stridePred struct {
	last   uint64
	stride int64
	conf   int
	seen   bool
}

type regionState struct {
	ema      float64
	emaValid bool
	samples  int
	lastRegs [isa.NumRegs]uint64
	haveRegs bool
	liveIn   [isa.NumRegs]bool
	writeSet [isa.NumRegs]bool
	preds    [isa.NumRegs]stridePred
	// lastFactor is the packing factor of the previous spawn: the number of
	// iterations between the previous training sample and the next one.
	lastFactor int
}

// PackPredictor holds per-region packing state, keyed by region ID (the
// continuation address).
type PackPredictor struct {
	cfg     PackConfig
	regions map[int64]*regionState

	// Stats.
	Packed        uint64
	FactorSum     uint64
	MaxFactorSeen int
	Mispredicts   uint64
}

// NewPackPredictor returns an empty predictor.
func NewPackPredictor(cfg PackConfig) *PackPredictor {
	return &PackPredictor{cfg: cfg, regions: make(map[int64]*regionState)}
}

func (p *PackPredictor) region(id int64) *regionState {
	r := p.regions[id]
	if r == nil {
		r = &regionState{}
		p.regions[id] = r
	}
	return r
}

// ObserveLiveIn records that a register was consumed before being written
// within an iteration — i.e. its value crossed an iteration boundary. The
// engine derives this from the committed instruction stream of each epoch
// (each epoch is a contiguous program-order slice).
func (p *PackPredictor) ObserveLiveIn(id int64, reg isa.Reg) {
	if reg != isa.X0 {
		p.region(id).liveIn[reg] = true
	}
}

// ObserveWrite records that a register is written inside the region.
func (p *PackPredictor) ObserveWrite(id int64, reg isa.Reg) {
	if reg != isa.X0 {
		p.region(id).writeSet[reg] = true
	}
}

// TrainStride trains the per-register strided value predictor with the
// register state at a spawn-point detach of region id. Spawns happen in
// epoch order, so consecutive samples are `iters` iterations apart, where
// iters is the packing factor of the previous spawn; the learned stride is
// always per-iteration.
func (p *PackPredictor) TrainStride(id int64, regs *[isa.NumRegs]uint64, resolved *[isa.NumRegs]bool) {
	r := p.region(id)
	iters := int64(r.lastFactor)
	if iters < 1 {
		iters = 1
	}
	if r.haveRegs {
		for i := 0; i < isa.NumRegs; i++ {
			if resolved != nil && !resolved[i] {
				// Unknown value: restart this register's training rather
				// than learn from garbage.
				r.preds[i].seen = false
				continue
			}
			sp := &r.preds[i]
			delta := int64(regs[i] - r.lastRegs[i])
			if !sp.seen {
				if delta%iters == 0 {
					sp.last, sp.stride, sp.seen = regs[i], delta/iters, true
				}
				continue
			}
			if delta == sp.stride*iters {
				if sp.conf < p.cfg.ConfMax {
					sp.conf++
				}
			} else {
				sp.conf -= p.cfg.MissPenalty
				if sp.conf <= 0 {
					sp.conf = 0
					if delta%iters == 0 {
						sp.stride = delta / iters
					} else {
						sp.seen = false
					}
				}
			}
			sp.last = regs[i]
		}
	}
	r.lastRegs = *regs
	r.haveRegs = true
	r.samples++
}

// OnEpochRetired trains the EMA epoch-size estimate with a retired epoch
// that committed `insts` instructions covering `iters` loop iterations:
// S <- Alpha*S + (1-Alpha)*I on the per-iteration size (§4.3).
func (p *PackPredictor) OnEpochRetired(id int64, insts uint64, iters int) {
	if iters < 1 {
		iters = 1
	}
	size := float64(insts) / float64(iters)
	if size <= 0 {
		return
	}
	r := p.region(id)
	if r.emaValid {
		r.ema = p.cfg.Alpha*r.ema + (1-p.cfg.Alpha)*size
	} else {
		r.ema = size
		r.emaValid = true
	}
}

// ivRegisters returns the registers currently believed to be induction
// variables: written inside the region and consumed across an iteration
// boundary ("in both the read and write sets and the new value is consumed
// in a later iteration", §4.3).
func (r *regionState) ivRegisters() []isa.Reg {
	var ivs []isa.Reg
	for i := 1; i < isa.NumRegs; i++ {
		if r.liveIn[i] && r.writeSet[i] {
			ivs = append(ivs, isa.Reg(i))
		}
	}
	return ivs
}

// Decide returns the packing factor for the next spawn of region id and the
// predicted register starting state for the successor, advanced by
// (factor-1) iterations from the given detach-point registers. factor == 1
// means no packing (spawn with the actual registers). Packing requires the
// region to be trained, the epoch-size estimate to be below target, and all
// IV registers to be confidently strided.
func (p *PackPredictor) Decide(id int64, regs *[isa.NumRegs]uint64) (factor int, predicted [isa.NumRegs]uint64) {
	predicted = *regs
	if !p.cfg.Enabled {
		return 1, predicted
	}
	r := p.region(id)
	r.lastFactor = 1
	if r.samples < p.cfg.TrainIters || !r.emaValid || r.ema <= 0 {
		return 1, predicted
	}
	f := 1
	for float64(f)*r.ema < float64(p.cfg.TargetSize) && f < p.cfg.MaxFactor {
		f++
	}
	if f <= 1 {
		return 1, predicted
	}
	ivs := r.ivRegisters()
	for _, reg := range ivs {
		sp := &r.preds[reg]
		if sp.conf < p.cfg.ConfThreshold {
			return 1, predicted
		}
	}
	for _, reg := range ivs {
		sp := &r.preds[reg]
		predicted[reg] = regs[reg] + uint64(sp.stride*int64(f-1))
	}
	r.lastFactor = f
	p.Packed++
	p.FactorSum += uint64(f)
	if f > p.MaxFactorSeen {
		p.MaxFactorSeen = f
	}
	return f, predicted
}

// IVs returns the registers the predictor currently believes are induction
// variables for the region (read and written across iterations).
func (p *PackPredictor) IVs(id int64) []isa.Reg {
	r := p.regions[id]
	if r == nil {
		return nil
	}
	return r.ivRegisters()
}

// Verify compares the prediction handed to a successor against the actual
// register state the parent reached at the corresponding detach. It returns
// the list of mispredicted registers (empty when the prediction held).
func (p *PackPredictor) Verify(predicted, actual *[isa.NumRegs]uint64) []isa.Reg {
	var bad []isa.Reg
	for i := 1; i < isa.NumRegs; i++ {
		if predicted[i] != actual[i] {
			bad = append(bad, isa.Reg(i))
		}
	}
	if len(bad) > 0 {
		p.Mispredicts++
	}
	return bad
}

// Clone returns a deep copy sharing no mutable state with p: per-region
// training records are copied (they are flat value structs), so the clone and
// the original can be driven by independent machines concurrently.
// Checkpoints carry cloned predictors as warm LoopFrog-engine state for
// sampled windows.
func (p *PackPredictor) Clone() *PackPredictor {
	c := *p
	c.regions = make(map[int64]*regionState, len(p.regions))
	for id, r := range p.regions {
		cp := *r
		c.regions[id] = &cp
	}
	return &c
}

// MeanFactor returns the average packing factor over packed spawns.
func (p *PackPredictor) MeanFactor() float64 {
	if p.Packed == 0 {
		return 0
	}
	return float64(p.FactorSum) / float64(p.Packed)
}
