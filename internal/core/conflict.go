package core

// ConflictDetector implements §4.2 / Algorithm 1 of the paper: it keeps a
// read set and a write set of granules per threadlet and detects true
// read-after-write violations between threadlets, i.e. a read from a later
// epoch that was *serviced* before a write from an earlier epoch to an
// overlapping granule.
//
// All other hazard classes are handled without squashing by the SSB's
// multi-versioning (WAW/WAR) and value forwarding (in-order RAW), so the
// detector only ever reports the one case that requires recovery.
type ConflictDetector struct {
	rd, wr []GranuleSet
	// CheckLatency is the modelled background checking latency (Table 1:
	// 4 cycles); the engine delays threadlet commit by this much so
	// in-flight checks drain (§4.2).
	CheckLatency int64

	// Stats.
	Reads     uint64
	Writes    uint64
	Conflicts uint64
}

// NewConflictDetector builds a detector for n threadlets. newSet constructs
// the per-threadlet set implementation (exact or Bloom).
func NewConflictDetector(n int, checkLatency int64, newSet func() GranuleSet) *ConflictDetector {
	cd := &ConflictDetector{CheckLatency: checkLatency}
	cd.rd = make([]GranuleSet, n)
	cd.wr = make([]GranuleSet, n)
	for i := 0; i < n; i++ {
		cd.rd[i] = newSet()
		cd.wr[i] = newSet()
	}
	return cd
}

// OnRead records a serviced speculative read of the given granules by
// threadlet tid (Algorithm 1, SPECULATIVEREAD). Granules already in the
// threadlet's own write set were forwarded from its own prior writes and are
// excluded — reads of own data are always up to date.
func (cd *ConflictDetector) OnRead(tid int, granules []uint64) {
	cd.Reads++
	for _, g := range granules {
		if cd.wr[tid].Contains(g) {
			continue
		}
		cd.rd[tid].Add(g)
	}
}

// OnWrite records a performed write by threadlet tid and checks the younger
// threadlets for reads that should have observed it (Algorithm 1, WRITE).
// youngerChain lists the live threadlets strictly younger than tid,
// oldest-first. It returns the ID of the oldest violating threadlet, or
// squash=false if the write conflicts with no recorded read.
//
// Per the algorithm, granules that a middle threadlet t has itself written
// are removed from the forwarded set before moving to t's successor: any
// younger read of those granules reads t's (newer) value, so a conflict with
// *this* write is impossible — the check initiated by t's own write will
// catch any violation.
func (cd *ConflictDetector) OnWrite(tid int, granules []uint64, youngerChain []int) (victim int, squash bool) {
	cd.Writes++
	for _, g := range granules {
		cd.wr[tid].Add(g)
	}
	fwd := granules
	for _, t := range youngerChain {
		for _, g := range fwd {
			if cd.rd[t].Contains(g) {
				cd.Conflicts++
				return t, true // t observed a stale value
			}
		}
		// Drop granules masked by t's own writes.
		var keep []uint64
		for _, g := range fwd {
			if !cd.wr[t].Contains(g) {
				keep = append(keep, g)
			}
		}
		fwd = keep
		if len(fwd) == 0 {
			break
		}
	}
	return 0, false
}

// ReadSetContains reports whether tid's read set (possibly conservatively)
// contains granule g; used for external-snoop conflict checks (§4.1.4).
func (cd *ConflictDetector) ReadSetContains(tid int, g uint64) bool {
	return cd.rd[tid].Contains(g)
}

// WriteSetContains reports whether tid's write set contains granule g.
func (cd *ConflictDetector) WriteSetContains(tid int, g uint64) bool {
	return cd.wr[tid].Contains(g)
}

// Clear resets both sets of a threadlet (at squash, restart and retire).
func (cd *ConflictDetector) Clear(tid int) {
	cd.rd[tid].Clear()
	cd.wr[tid].Clear()
}

// SetSizes returns the current read/write set sizes of a threadlet.
func (cd *ConflictDetector) SetSizes(tid int) (reads, writes int) {
	return cd.rd[tid].Len(), cd.wr[tid].Len()
}
