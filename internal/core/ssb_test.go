package core

import (
	"math/rand"
	"testing"

	"loopfrog/internal/mem"
)

func newTestSSB(t *testing.T, cfg SSBConfig) (*SSB, *mem.Memory) {
	t.Helper()
	m := mem.NewMemory()
	return NewSSB(cfg, m), m
}

func TestSSBWriteThenReadOwnSlice(t *testing.T) {
	s, _ := newTestSSB(t, DefaultSSBConfig())
	chain := []int{0, 1} // threadlet 1 reads; 0 is older
	res := s.Write(1, 0x1000, 8, 0xdeadbeefcafef00d, chain, 0)
	if res.Overflow {
		t.Fatal("unexpected overflow")
	}
	if len(res.Granules) != 2 {
		t.Errorf("8-byte store touched %d granules, want 2 (4B granules)", len(res.Granules))
	}
	v, fwd := s.Read(chain, 0x1000, 8)
	if v != 0xdeadbeefcafef00d {
		t.Errorf("read %#x, want 0xdeadbeefcafef00d", v)
	}
	if !fwd {
		t.Error("read not marked forwarded")
	}
}

func TestSSBReadFallsBackToMemory(t *testing.T) {
	s, m := newTestSSB(t, DefaultSSBConfig())
	m.Write(0x2000, 8, 42)
	v, fwd := s.Read([]int{0}, 0x2000, 8)
	if v != 42 {
		t.Errorf("read %d, want 42 from backing memory", v)
	}
	if fwd {
		t.Error("memory read marked as forwarded")
	}
}

// TestSSBVersioningNewestOlderWins reproduces figure 5: a load from
// threadlet T observes, per granule, the newest value among memory and
// threadlets older than or equal to T, ignoring younger threadlets.
func TestSSBVersioningNewestOlderWins(t *testing.T) {
	s, m := newTestSSB(t, DefaultSSBConfig())
	m.Write(0x3000, 4, 100) // memory value, oldest
	m.Write(0x3004, 4, 200)
	m.Write(0x3008, 4, 300)

	// Epoch order: 0 (arch) < 1 < 2 < 3.
	s.Write(0, 0x3000, 4, 111, []int{0}, 0)          // T0 writes granule 0
	s.Write(1, 0x3000, 4, 122, []int{0, 1}, 0)       // T1 overwrites granule 0
	s.Write(1, 0x3004, 4, 222, []int{0, 1}, 0)       // T1 writes granule 1
	s.Write(3, 0x3008, 4, 333, []int{0, 1, 2, 3}, 0) // T3 (younger) writes granule 2

	// A load from T2 sees T1's granules 0 and 1, and memory's granule 2
	// (T3 is younger and must be ignored).
	chainT2 := []int{0, 1, 2}
	if v, _ := s.Read(chainT2, 0x3000, 4); v != 122 {
		t.Errorf("granule 0 = %d, want 122 (newest older write)", v)
	}
	if v, _ := s.Read(chainT2, 0x3004, 4); v != 222 {
		t.Errorf("granule 1 = %d, want 222", v)
	}
	if v, _ := s.Read(chainT2, 0x3008, 4); v != 300 {
		t.Errorf("granule 2 = %d, want 300 (younger threadlet ignored)", v)
	}

	// T0's own read sees its own value, not T1's.
	if v, _ := s.Read([]int{0}, 0x3000, 4); v != 111 {
		t.Errorf("T0 read = %d, want 111", v)
	}
}

func TestSSBMixedGranuleAssembly(t *testing.T) {
	// One 8-byte load spanning two granules written by different threadlets.
	s, _ := newTestSSB(t, DefaultSSBConfig())
	s.Write(0, 0x4000, 4, 0x11111111, []int{0}, 0)
	s.Write(1, 0x4004, 4, 0x22222222, []int{0, 1}, 0)
	v, _ := s.Read([]int{0, 1}, 0x4000, 8)
	if v != 0x2222222211111111 {
		t.Errorf("assembled read = %#x, want 0x2222222211111111", v)
	}
}

func TestSSBPartialGranuleWriteFillsAndReports(t *testing.T) {
	s, m := newTestSSB(t, DefaultSSBConfig())
	m.Write(0x5000, 4, 0xaabbccdd)
	res := s.Write(1, 0x5001, 1, 0xee, []int{0, 1}, 0)
	if len(res.FillGranules) != 1 {
		t.Fatalf("partial write reported %d fill granules, want 1 (§4.1.1)", len(res.FillGranules))
	}
	v, _ := s.Read([]int{0, 1}, 0x5000, 4)
	if v != 0xaabbeedd {
		t.Errorf("merged granule = %#x, want 0xaabbeedd", v)
	}
	// A full-granule write must not fill-read.
	res = s.Write(1, 0x5004, 4, 1, []int{0, 1}, 0)
	if len(res.FillGranules) != 0 {
		t.Errorf("full-granule write reported fills: %v", res.FillGranules)
	}
}

func TestSSBPartialFillReadsNewestOlderValue(t *testing.T) {
	// The read-for-fill must source older-threadlet data, not just memory.
	s, m := newTestSSB(t, DefaultSSBConfig())
	m.Write(0x6000, 4, 0x00000000)
	s.Write(0, 0x6000, 4, 0x44332211, []int{0}, 0)
	s.Write(1, 0x6000, 1, 0xff, []int{0, 1}, 0) // partial: bytes 1-3 from T0
	v, _ := s.Read([]int{0, 1}, 0x6000, 4)
	if v != 0x443322ff {
		t.Errorf("fill-merged value = %#x, want 0x443322ff", v)
	}
}

func TestSSBMergeWritesBackOnlyValidGranules(t *testing.T) {
	s, m := newTestSSB(t, DefaultSSBConfig())
	m.Write(0x7000, 8, 0x9999999999999999)
	s.Write(2, 0x7000, 4, 0x12345678, []int{2}, 0)
	flushed := s.Merge(2)
	if flushed != 1 {
		t.Errorf("flushed %d lines, want 1", flushed)
	}
	if got := m.Read(0x7000, 4); got != 0x12345678 {
		t.Errorf("merged granule = %#x, want 0x12345678", got)
	}
	if got := m.Read(0x7004, 4); got != 0x99999999 {
		t.Errorf("untouched granule = %#x, want 0x99999999 (mask ignored)", got)
	}
	if s.Lines(2) != 0 {
		t.Errorf("slice still holds %d lines after merge", s.Lines(2))
	}
	// Post-merge reads see the data from memory.
	if v, fwd := s.Read([]int{2}, 0x7000, 4); v != 0x12345678 || fwd {
		t.Errorf("post-merge read = (%#x, fwd=%v), want (0x12345678, false)", v, fwd)
	}
}

func TestSSBSquashDiscardsSliceOnly(t *testing.T) {
	s, m := newTestSSB(t, DefaultSSBConfig())
	m.Write(0x8000, 8, 7)
	s.Write(1, 0x8000, 8, 1111, []int{0, 1}, 0)
	s.Write(2, 0x8008, 8, 2222, []int{0, 1, 2}, 0)
	s.Squash(1)
	if v, _ := s.Read([]int{0, 1}, 0x8000, 8); v != 7 {
		t.Errorf("squashed data still visible: %d", v)
	}
	if v, _ := s.Read([]int{0, 1, 2}, 0x8008, 8); v != 2222 {
		t.Errorf("unrelated threadlet data lost on squash: %d", v)
	}
	if s.Lines(1) != 0 {
		t.Error("line counter not reset on squash")
	}
}

func TestSSBOverflowOnCapacity(t *testing.T) {
	cfg := DefaultSSBConfig()
	cfg.SliceBytes = 128 // 4 lines of 32 B
	s, _ := newTestSSB(t, cfg)
	chain := []int{0}
	for i := 0; i < 4; i++ {
		res := s.Write(0, uint64(0x9000+i*64), 8, 1, chain, 0)
		if res.Overflow {
			t.Fatalf("overflow at line %d of 4", i)
		}
	}
	res := s.Write(0, 0xa000, 8, 1, chain, 0)
	if !res.Overflow {
		t.Fatal("fifth line accepted by a 4-line slice")
	}
	if s.Stats.Overflows != 1 {
		t.Errorf("overflow stat = %d, want 1", s.Stats.Overflows)
	}
	// Same line again is fine (no new allocation).
	if res := s.Write(0, 0x9000, 8, 2, chain, 0); res.Overflow {
		t.Error("write to resident line overflowed")
	}
}

func TestSSBLowAssociativityConflictsAndVictim(t *testing.T) {
	cfg := DefaultSSBConfig()
	cfg.SliceBytes = 2 << 10
	cfg.Assoc = 1 // direct-mapped: 64 sets
	s, _ := newTestSSB(t, cfg)
	chain := []int{0}
	// Two lines mapping to the same set (stride = 64 sets * 32 B = 2 KiB).
	if res := s.Write(0, 0x10000, 8, 1, chain, 0); res.Overflow {
		t.Fatal("first line overflowed")
	}
	if res := s.Write(0, 0x10000+2048, 8, 2, chain, 1); !res.Overflow {
		t.Fatal("set conflict without victim cache must overflow")
	}

	// With a victim cache the conflict is absorbed and both values remain
	// readable.
	cfg.VictimEntries = 8
	s2, _ := newTestSSB(t, cfg)
	s2.Write(0, 0x10000, 8, 1, chain, 0)
	if res := s2.Write(0, 0x10000+2048, 8, 2, chain, 1); res.Overflow {
		t.Fatal("victim cache did not absorb the set conflict")
	}
	if v, _ := s2.Read(chain, 0x10000, 8); v != 1 {
		t.Errorf("victim-resident value = %d, want 1", v)
	}
	if v, _ := s2.Read(chain, 0x10000+2048, 8); v != 2 {
		t.Errorf("set-resident value = %d, want 2", v)
	}
	if s2.Stats.VictimInserts != 1 {
		t.Errorf("victim inserts = %d, want 1", s2.Stats.VictimInserts)
	}
	// Merge must also drain the victim line.
	s2.Merge(0)
	if v, _ := s2.Read(chain, 0x10000, 8); v != 1 {
		t.Errorf("victim line lost at merge: %d", v)
	}
}

func TestSSBHoldsAddr(t *testing.T) {
	s, _ := newTestSSB(t, DefaultSSBConfig())
	s.Write(1, 0xb000, 4, 5, []int{0, 1}, 0)
	if !s.HoldsAddr(1, 0xb000) || !s.HoldsAddr(1, 0xb003) {
		t.Error("HoldsAddr missed a written granule")
	}
	if s.HoldsAddr(1, 0xb004) {
		t.Error("HoldsAddr reported an unwritten granule in the same line")
	}
	if s.HoldsAddr(0, 0xb000) {
		t.Error("HoldsAddr leaked across slices")
	}
}

func TestSSBGranulesOf(t *testing.T) {
	s, _ := newTestSSB(t, DefaultSSBConfig())
	if g := s.GranulesOf(0x1000, 8); len(g) != 2 || g[0] != 0x400 || g[1] != 0x401 {
		t.Errorf("GranulesOf(0x1000,8) = %v", g)
	}
	if g := s.GranulesOf(0x1001, 1); len(g) != 1 || g[0] != 0x400 {
		t.Errorf("GranulesOf(0x1001,1) = %v", g)
	}
}

func TestSSBGranuleSizeVariants(t *testing.T) {
	for _, gran := range []int{1, 2, 4, 8, 16, 32} {
		cfg := DefaultSSBConfig()
		cfg.GranuleBytes = gran
		s, m := newTestSSB(t, cfg)
		m.Write(0xc000, 8, 0x1111111111111111)
		s.Write(0, 0xc000, 4, 0xabcdef01, []int{0}, 0)
		if v, _ := s.Read([]int{0}, 0xc000, 4); v != 0xabcdef01 {
			t.Errorf("granule=%d: read = %#x, want 0xabcdef01", gran, v)
		}
		if v, _ := s.Read([]int{0}, 0xc004, 4); v != 0x11111111 {
			t.Errorf("granule=%d: neighbouring bytes corrupted: %#x", gran, v)
		}
		s.Merge(0)
		if got := m.Read(0xc000, 4); got != 0xabcdef01 {
			t.Errorf("granule=%d: merge lost data: %#x", gran, got)
		}
	}
}

// TestSSBRandomisedVersioningMatchesOracle cross-checks the multi-version
// read logic against a straightforward per-byte oracle over random access
// sequences.
func TestSSBRandomisedVersioningMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cfg := DefaultSSBConfig()
		cfg.GranuleBytes = []int{4, 8}[rng.Intn(2)]
		s, m := newTestSSB(t, cfg)
		// Oracle: per-threadlet byte maps over a small address window.
		const base, window = 0x20000, 256
		oracle := make([]map[uint64]byte, 4)
		for i := range oracle {
			oracle[i] = make(map[uint64]byte)
		}
		memBytes := make([]byte, window)
		rng.Read(memBytes)
		m.WriteBytes(base, memBytes)

		live := 1 + rng.Intn(4) // chain [0..live)
		chainFor := func(tid int) []int {
			c := make([]int, tid+1)
			for i := range c {
				c[i] = i
			}
			return c
		}
		for op := 0; op < 200; op++ {
			tid := rng.Intn(live)
			size := []int{1, 2, 4, 8}[rng.Intn(4)]
			addr := base + uint64(rng.Intn(window-8))&^uint64(size-1)
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				res := s.Write(tid, addr, size, v, chainFor(tid), int64(op))
				if res.Overflow {
					continue
				}
				for i := 0; i < size; i++ {
					oracle[tid][addr+uint64(i)] = byte(v >> (8 * i))
				}
				// A partial-granule write also pins the fill bytes into the
				// writing threadlet's version.
				for _, g := range res.FillGranules {
					gAddr := g * uint64(cfg.GranuleBytes)
					for i := 0; i < cfg.GranuleBytes; i++ {
						a := gAddr + uint64(i)
						if _, own := oracle[tid][a]; own {
							continue
						}
						oracle[tid][a] = oracleByte(oracle, memBytes, base, tid, a)
					}
				}
			} else {
				got, _ := s.Read(chainFor(tid), addr, size)
				var want uint64
				for i := size - 1; i >= 0; i-- {
					want = want<<8 | uint64(oracleByte(oracle, memBytes, base, tid, addr+uint64(i)))
				}
				if got != want {
					t.Fatalf("trial %d op %d: read(tid=%d, %#x, %d) = %#x, want %#x",
						trial, op, tid, addr, size, got, want)
				}
			}
		}
	}
}

// oracleByte returns the newest value of address a visible to threadlet tid.
func oracleByte(oracle []map[uint64]byte, memBytes []byte, base uint64, tid int, a uint64) byte {
	for t := tid; t >= 0; t-- {
		if v, ok := oracle[t][a]; ok {
			return v
		}
	}
	return memBytes[a-base]
}

func TestSSBConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSSB accepted line size not a multiple of granule size")
		}
	}()
	cfg := DefaultSSBConfig()
	cfg.LineBytes = 32
	cfg.GranuleBytes = 5
	NewSSB(cfg, mem.NewMemory())
}
