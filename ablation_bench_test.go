package loopfrog

import (
	"testing"

	"loopfrog/internal/experiments"
)

// Ablation benchmarks for the design choices DESIGN.md calls out, beyond
// the paper's own studies.

func BenchmarkAblationBloomFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BloomAblation(quickSuite(), []int{4096, 512})
		if err != nil {
			b.Fatal(err)
		}
		// exact vs the paper-sized 4096-bit filter: should be ~equal.
		b.ReportMetric(100*(rows[0].Geomean-rows[1].Geomean), "exact-vs-4096b-pp")
		// tiny 512-bit filters alias heavily and lose speedup.
		b.ReportMetric(100*(rows[0].Geomean-rows[2].Geomean), "exact-vs-512b-pp")
	}
}

func BenchmarkAblationWidthScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WidthScaling(quickSuite(), []int{4, 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(rows[0].Geomean-1), "4wide-speedup-%")
		b.ReportMetric(100*(rows[1].Geomean-1), "8wide-speedup-%")
	}
}

func BenchmarkAblationThreadlets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ThreadletScaling(quickSuite(), []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(rows[0].Geomean-1), "2t-speedup-%")
		b.ReportMetric(100*(rows[1].Geomean-1), "4t-speedup-%")
	}
}
