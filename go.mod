module loopfrog

go 1.22
