// Package loopfrog is a from-scratch Go reproduction of
// "LoopFrog: In-Core Hint-Based Loop Parallelization" (MICRO 2025): an
// in-core thread-level-speculation scheme where compiler hints let a wide
// out-of-order core execute future loop iterations as speculative
// threadlets.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// paper-to-implementation substitutions, and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmarks in bench_test.go regenerate the
// paper's tables and figures; cmd/lfbench runs the full versions.
package loopfrog
