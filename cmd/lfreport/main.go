// Command lfreport explains, loop by loop, why a program does (or does not)
// speed up under LoopFrog: it runs the baseline/LoopFrog pair in the detailed
// model with per-region speculation ledgers enabled, lints the program for
// the static region table and profitability notes, joins the two by region ID
// (the continuation address), and prints a ranked per-loop report with a
// keep/retune/drop verdict for every hint.
//
// Usage:
//
//	lfreport [-threadlets N] [-nopack] [-parallel N] [-sampled]
//	         [-format text|json|html] [-o file]
//	         (-bench name | -suite | file.ll | file.s)
//
// -suite reports every CPU 2017 suite workload in one document. Before
// reporting, the per-region ledger totals are reconciled exactly against the
// run's global counters; a mismatch is a simulator bug and fails the run.
// -sampled estimates via the two-tier sampled model instead (default sample
// configuration): much faster, interval-weighted ledger aggregates, report
// marked as an estimate; exact reconciliation does not apply.
//
// Exit status: 0 success, 1 run or reconciliation failure, 2 usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"loopfrog/internal/asm"
	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/lint"
	"loopfrog/internal/report"
	"loopfrog/internal/sim"
	"loopfrog/internal/workloads"
)

func main() {
	threadlets := flag.Int("threadlets", 4, "threadlet contexts")
	nopack := flag.Bool("nopack", false, "disable iteration packing")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = all cores)")
	bench := flag.String("bench", "", "report a named built-in benchmark")
	suite := flag.Bool("suite", false, "report every CPU 2017 suite workload")
	sampled := flag.Bool("sampled", false, "estimate via two-tier sampled simulation instead of full detailed runs")
	format := flag.String("format", "text", "output format: text, json, or html")
	out := flag.String("o", "", "write the report to a file instead of stdout")
	flag.Parse()

	if *threadlets < 1 {
		fmt.Fprintf(os.Stderr, "lfreport: -threadlets must be at least 1 (got %d)\n", *threadlets)
		flag.Usage()
		os.Exit(2)
	}
	switch *format {
	case "text", "json", "html":
	default:
		fmt.Fprintf(os.Stderr, "lfreport: unknown format %q (want text, json, or html)\n", *format)
		flag.Usage()
		os.Exit(2)
	}
	inputs := 0
	for _, set := range []bool{*bench != "", *suite, len(flag.Args()) == 1} {
		if set {
			inputs++
		}
	}
	if inputs != 1 {
		fmt.Fprintln(os.Stderr, "lfreport: need exactly one input (-bench name | -suite | file.ll | file.s)")
		flag.Usage()
		os.Exit(2)
	}

	sim.SetParallelism(*parallel)
	cfg := cpu.DefaultConfig()
	cfg.Threadlets = *threadlets
	if *nopack {
		cfg.Pack.Enabled = false
	}

	progs, err := loadPrograms(*bench, *suite, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfreport:", err)
		os.Exit(1)
	}

	build := buildProfile
	if *sampled {
		build = buildSampledProfile
	}
	profiles := make([]*report.Profile, 0, len(progs))
	for _, prog := range progs {
		p, err := build(cfg, prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfreport: %s: %v\n", prog.Name, err)
			os.Exit(1)
		}
		profiles = append(profiles, p)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := write(w, *format, profiles); err != nil {
		fmt.Fprintln(os.Stderr, "lfreport:", err)
		os.Exit(1)
	}
}

// buildProfile runs the A/B pair for one program, verifies the ledger totals
// reconcile, and joins the dynamic profile with the lint report.
func buildProfile(cfg cpu.Config, prog *asm.Program) (*report.Profile, error) {
	lrep := lint.Run(prog, lint.Options{})
	stats, err := sim.RunJobs([]sim.Job{
		{Cfg: sim.BaselineOf(cfg), Prog: prog},
		{Cfg: cfg, Prog: prog},
	})
	if err != nil {
		return nil, err
	}
	base, lf := stats[0], stats[1]
	if err := lf.ReconcileRegions(); err != nil {
		return nil, fmt.Errorf("region ledgers do not reconcile with the global counters (simulator bug): %w", err)
	}
	return report.Build(report.Input{
		Program:        prog.Name,
		Regions:        lf.Regions,
		Cycles:         lf.Cycles,
		BaselineCycles: base.Cycles,
		Lint:           lrep,
	}), nil
}

// buildSampledProfile is buildProfile on the two-tier sampled estimator: the
// A/B pair runs as one sampled batch and the per-region ledgers are the
// interval-weighted window aggregates, so the profile is marked as an
// estimate and exact reconciliation does not apply.
func buildSampledProfile(cfg cpu.Config, prog *asm.Program) (*report.Profile, error) {
	lrep := lint.Run(prog, lint.Options{})
	res, err := sim.RunSampledAB(cfg, prog, sim.SampleConfig{})
	if err != nil {
		return nil, err
	}
	return report.Build(report.Input{
		Program:        prog.Name,
		Regions:        res.LF.Regions,
		Cycles:         int64(res.LF.EstCycles + 0.5),
		BaselineCycles: int64(res.Base.EstCycles + 0.5),
		Estimated:      true,
		Lint:           lrep,
	}), nil
}

// write renders the profiles in the requested format: text concatenates
// per-program reports, json emits one profile object (single input) or a
// {"suite": [...]} document, html is one standalone page.
func write(w io.Writer, format string, profiles []*report.Profile) error {
	switch format {
	case "json":
		if len(profiles) == 1 {
			return profiles[0].WriteJSON(w)
		}
		return report.WriteSuiteJSON(w, profiles)
	case "html":
		return report.WriteHTML(w, profiles)
	default:
		for i, p := range profiles {
			if i > 0 {
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			if err := p.WriteText(w); err != nil {
				return err
			}
		}
		return nil
	}
}

// loadPrograms resolves the input selection into assembled images.
func loadPrograms(bench string, suite bool, args []string) ([]*asm.Program, error) {
	if suite {
		var progs []*asm.Program
		for _, b := range workloads.CPU2017() {
			prog, err := b.Program()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			progs = append(progs, prog)
		}
		return progs, nil
	}
	if bench != "" {
		for _, s := range [][]*workloads.Benchmark{workloads.CPU2017(), workloads.CPU2006()} {
			if b := workloads.ByName(s, bench); b != nil {
				prog, err := b.Program()
				if err != nil {
					return nil, err
				}
				return []*asm.Program{prog}, nil
			}
		}
		return nil, fmt.Errorf("unknown benchmark %q", bench)
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".s") {
		prog, err := asm.Assemble(args[0], string(src))
		if err != nil {
			return nil, err
		}
		return []*asm.Program{prog}, nil
	}
	prog, diags, err := compiler.Compile(args[0], string(src))
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, "lfreport: note:", d)
	}
	if err != nil {
		return nil, err
	}
	return []*asm.Program{prog}, nil
}
