// Command lfbench regenerates the paper's tables and figures (§6) on the
// simulator. With no flags it runs everything; individual experiments can be
// selected.
//
// Usage:
//
//	lfbench [-fig 1|6|7|8|9|10] [-table 1|2|3] [-packing] [-assoc]
//	        [-generality] [-area] [-quick] [-parallel N] [-metrics file]
//	        [-chaos] [-seed N] [-sampled] [-sampledjson file]
//	        [-spectre] [-spectrejson file]
//	        [-report file] [-cpuprofile file] [-memprofile file]
//
// -report writes the suite-wide per-region speculation profile — every
// workload's A/B pair with per-region ledgers, reconciled and joined with the
// static region table — in lfreport's suite JSON schema. Used alone it runs
// only the report (-quick restricts it to the reduced subset); combined with
// experiment selectors it rides along after them.
//
// Simulations are fanned out over all CPU cores by default; -parallel caps
// the worker count. -metrics writes the harness's scheduling and run-cache
// telemetry (per-job wall time, worker utilisation, cache hit/miss counters)
// as JSON after all experiments complete.
//
// -chaos runs the robustness matrix instead of the paper experiments: every
// fault-injection kind (and their combination) across the chaos workload
// suite at three seeds starting from -seed, each run differentially checked
// against the sequential reference. Any failing cell exits 1.
//
// -spectre runs the speculative-leak study instead of the paper experiments:
// every workload of the suite (-quick for the subset) plus the seeded
// security controls, each measured as a baseline / taint-detection /
// mitigation triple. The table reports each workload's leak profile and the
// cycle cost of the ShadowBinding-style DelaySpeculativeLoadDeps defence;
// any mitigated run that still produces a leak candidate exits 1.
// -spectrejson writes the rows as BENCH_spectre.json. Incompatible with
// -sampled: taint state cannot survive checkpoint seeding.
//
// -sampled runs the two-tier sampled-simulation accuracy study instead of
// the paper experiments: every workload of the suite (-quick for the subset)
// is run in full detail as ground truth and then estimated by sampled
// simulation at the default full-tiling configuration; any cycle error over
// 2% (5% for the documented outliers) exits 1. -sampledjson additionally
// sweeps the accuracy-vs-speedup curve across sampling configurations and
// writes the result (BENCH_sampled.json schema) to the given file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"loopfrog/internal/cpu"
	"loopfrog/internal/experiments"
	"loopfrog/internal/fault"
	"loopfrog/internal/lint"
	"loopfrog/internal/report"
	"loopfrog/internal/sim"
	"loopfrog/internal/telemetry"
	"loopfrog/internal/workloads"
)

func main() {
	fig := flag.Int("fig", 0, "run one figure (1, 6, 7, 8, 9, 10)")
	table := flag.Int("table", 0, "run one table (1, 2, 3)")
	packing := flag.Bool("packing", false, "run the §6.5 packing study")
	assoc := flag.Bool("assoc", false, "run the §6.6 associativity study")
	generality := flag.Bool("generality", false, "run the §6.7 generality study")
	areaFlag := flag.Bool("area", false, "print the §6.8 overhead report")
	quick := flag.Bool("quick", false, "use a reduced benchmark subset for sweeps")
	chaos := flag.Bool("chaos", false, "run the fault-injection chaos matrix and exit")
	seed := flag.Int64("seed", 1, "first chaos matrix seed")
	sampled := flag.Bool("sampled", false, "run the sampled-simulation accuracy study and exit")
	sampledJSON := flag.String("sampledjson", "", "with the accuracy study, sweep the accuracy-vs-speedup curve and write BENCH_sampled.json here")
	spectre := flag.Bool("spectre", false, "run the speculative-leak mitigation-cost study and exit")
	spectreJSON := flag.String("spectrejson", "", "with the leak study, write BENCH_spectre.json here")
	fabricFlag := flag.Bool("fabric", false, "run the distributed-sweep throughput study (3 in-process nodes vs 1) and exit")
	fabricJSON := flag.String("fabricjson", "BENCH_fabric.json", "with the fabric study, write the comparison here")
	tuneFlag := flag.Bool("tune", false, "run the autotuned-vs-static hint-selection study and exit")
	tuneJSON := flag.String("tunejson", "BENCH_tune.json", "with the tune study, write the table and search-cost curve here")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = all cores)")
	reportPath := flag.String("report", "", "write the suite-wide per-region speculation profile (lfreport suite JSON) to this file")
	metricsPath := flag.String("metrics", "", "write harness telemetry JSON to this file on exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if (*spectre || *spectreJSON != "") && (*sampled || *sampledJSON != "") {
		fmt.Fprintln(os.Stderr, "lfbench: -spectre is incompatible with -sampled: taint state cannot survive checkpoint seeding")
		flag.Usage()
		os.Exit(2)
	}

	sim.SetParallelism(*parallel)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lfbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lfbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lfbench:", err)
			}
		}()
	}

	if *chaos {
		if !runChaos(*seed) {
			os.Exit(1)
		}
		return
	}

	if *fabricFlag {
		if !runFabric(*fabricJSON, 8, 3) {
			os.Exit(1)
		}
		return
	}

	if *tuneFlag {
		if !runTuneStudy(*tuneJSON, *quick) {
			os.Exit(1)
		}
		return
	}

	all := *fig == 0 && *table == 0 && !*packing && !*assoc && !*generality && !*areaFlag && *reportPath == ""
	suite17 := workloads.CPU2017()
	suite06 := workloads.CPU2006()
	sweepSuite := suite17
	if *quick {
		sweepSuite = quickSubset(suite17)
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "lfbench:", err)
		os.Exit(1)
	}

	if *sampled || *sampledJSON != "" {
		if !runSampled(sweepSuite, *sampledJSON) {
			os.Exit(1)
		}
		return
	}

	if *spectre || *spectreJSON != "" {
		// The seeded security suite rides along so the study always shows a
		// positive (leaky) and a negative (hardened) control next to the
		// stock workloads.
		if !runSpectre(append(append([]*workloads.Benchmark{}, sweepSuite...), workloads.Security()...), *spectreJSON) {
			os.Exit(1)
		}
		return
	}

	var results17 []*sim.Result
	need17 := all || *fig == 6 || *fig == 7 || *fig == 8 || *table == 2 || *table == 3 || *generality
	if need17 {
		var err error
		results17, err = sim.RunSuite(cpu.DefaultConfig(), suite17)
		if err != nil {
			die(err)
		}
	}

	if all || *table == 1 {
		printTable1()
	}
	if all || *fig == 1 {
		rows, err := experiments.Figure1(sweepSuite, []int{4, 6, 8, 10})
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatFigure1(rows))
	}
	if all || *fig == 6 {
		rows, geo, err := experiments.Figure6(cpu.DefaultConfig(), suite17, suite06)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatFigure6(rows, geo))
	}
	if all || *fig == 7 {
		fmt.Println(experiments.FormatFigure7(experiments.Figure7(results17, true)))
	}
	if all || *fig == 8 {
		fmt.Println(experiments.FormatFigure8(experiments.Figure8(results17, true)))
	}
	if all || *table == 2 {
		fmt.Println(experiments.FormatTable2(experiments.Table2(results17)))
	}
	if all || *packing {
		p, err := experiments.Packing(sweepSuite)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatPacking(p))
	}
	if all || *fig == 9 {
		rows, err := experiments.Figure9(sweepSuite, []int{512, 2 << 10, 8 << 10, 32 << 10})
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSweep("Figure 9: sensitivity to SSB size (default 8KiB total)", rows))
	}
	if all || *fig == 10 {
		rows, err := experiments.Figure10(sweepSuite, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSweep("Figure 10: sensitivity to granule size (default 4B)", rows))
	}
	if all || *assoc {
		rows, err := experiments.Associativity(sweepSuite)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSweep("SSB associativity study (§6.6)", rows))
	}
	if all || *generality {
		allGeo, nonOMP := experiments.Generality(results17)
		fmt.Printf("Generality (§6.7)\nall loops geomean:            %+.1f%%\nnon-OpenMP-region loops only: %+.1f%%\n\n",
			100*(allGeo-1), 100*(nonOMP-1))
	}
	if all || *areaFlag {
		fmt.Println(experiments.AreaReport())
	}
	if all || *table == 3 {
		var xs []float64
		for _, r := range results17 {
			xs = append(xs, r.Speedup())
		}
		fmt.Println(experiments.Table3(sim.Geomean(xs)))
	}

	if *reportPath != "" {
		if err := writeRegionReport(*reportPath, sweepSuite); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *reportPath)
	}

	if *metricsPath != "" {
		reg := telemetry.NewRegistry()
		if err := telemetry.CollectHarness(reg, sim.DefaultHarness()); err != nil {
			die(err)
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			die(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
	}
}

// writeRegionReport runs the A/B pair with per-region ledgers for every suite
// workload, reconciles each LoopFrog run's ledger totals against its global
// counters, joins the dynamic profile with the linter's static region table,
// and writes the result in lfreport's suite JSON schema ({"suite": [...]}).
func writeRegionReport(path string, suite []*workloads.Benchmark) error {
	cfg := cpu.DefaultConfig()
	var profiles []*report.Profile
	for _, b := range suite {
		prog, err := b.Program()
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		lrep := lint.Run(prog, lint.Options{})
		stats, err := sim.RunJobs([]sim.Job{
			{Cfg: sim.BaselineOf(cfg), Prog: prog},
			{Cfg: cfg, Prog: prog},
		})
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		if err := stats[1].ReconcileRegions(); err != nil {
			return fmt.Errorf("%s: region ledgers do not reconcile with the global counters (simulator bug): %w", b.Name, err)
		}
		profiles = append(profiles, report.Build(report.Input{
			Program:        prog.Name,
			Regions:        stats[1].Regions,
			Cycles:         stats[1].Cycles,
			BaselineCycles: stats[0].Cycles,
			Lint:           lrep,
		}))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteSuiteJSON(f, profiles); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSampled runs the sampled-simulation accuracy study over suite: full
// detailed runs as ground truth, sampled estimates at the default full-tiling
// configuration (plus the whole accuracy-vs-speedup curve when jsonPath is
// set), gated on the documented error budgets. Returns false on any breach.
func runSampled(suite []*workloads.Benchmark, jsonPath string) bool {
	configs := []sim.SampleConfig{sim.DefaultSampleConfig()}
	if jsonPath != "" {
		configs = experiments.SampledCurveConfigs()
	}
	points, err := experiments.Sampled(suite, configs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfbench:", err)
		return false
	}
	fmt.Print(experiments.FormatSampled(points))
	if jsonPath != "" {
		if err := writeSampledJSON(jsonPath, suite, points); err != nil {
			fmt.Fprintln(os.Stderr, "lfbench:", err)
			return false
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	fails := experiments.SampledFailures(points)
	for _, f := range fails {
		fmt.Fprintln(os.Stderr, "lfbench: FAIL:", f)
	}
	if len(fails) == 0 {
		fmt.Println("sampled accuracy gate: PASS")
	}
	return len(fails) == 0
}

// runTuneStudy runs the autotuned-vs-static study: the budgeted hint
// autotuner over the study suite at each budget of the search-cost curve,
// every winner gated against the static selection. Returns false on any
// gate breach.
func runTuneStudy(jsonPath string, quick bool) bool {
	suite := experiments.TuneSuite()
	budgets := experiments.DefaultTuneBudgets()
	if quick {
		if len(suite) > 3 {
			suite = suite[:3]
		}
		budgets = budgets[:1]
	}
	pts, err := experiments.TuneStudy(suite, budgets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfbench:", err)
		return false
	}
	fmt.Print(experiments.FormatTune(pts))
	if jsonPath != "" {
		if err := writeTuneJSON(jsonPath, budgets, pts); err != nil {
			fmt.Fprintln(os.Stderr, "lfbench:", err)
			return false
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	fails := experiments.TuneFailures(pts)
	for _, f := range fails {
		fmt.Fprintln(os.Stderr, "lfbench: FAIL:", f)
	}
	if len(fails) == 0 {
		fmt.Println("autotuning gate: PASS")
	}
	return len(fails) == 0
}

// tuneReport is the BENCH_tune.json schema.
type tuneReport struct {
	Description string                  `json:"description"`
	Meta        experiments.Meta        `json:"meta"`
	Budgets     []int                   `json:"budgets"`
	BeatsStatic int                     `json:"beats_static"`
	Curve       []experiments.TunePoint `json:"curve"`
}

func writeTuneJSON(path string, budgets []int, pts []experiments.TunePoint) error {
	rep := tuneReport{
		Description: "Budgeted hint autotuning: per workload and per evaluation budget, the successive-halving search's winning variant against the compiler's static hint selection. Scores are speedups over the shared hints-as-NOPs baseline at the deepest tier each side reached; spent is the search cost actually consumed in rung-0-equivalent units; beats_static counts workloads whose largest-budget winner strictly improves on the static selection.",
		Meta:        experiments.NewMeta("lfbench -tune -tunejson BENCH_tune.json"),
		Budgets:     budgets,
		BeatsStatic: experiments.TuneBeats(pts),
		Curve:       pts,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sampledReport is the BENCH_sampled.json schema.
type sampledReport struct {
	Description string                     `json:"description"`
	Meta        experiments.Meta           `json:"meta"`
	Workloads   []string                   `json:"workloads"`
	Budgets     map[string]float64         `json:"budgets_pct"`
	Outliers    []string                   `json:"outliers"`
	Curve       []experiments.SampledPoint `json:"curve"`
}

func writeSampledJSON(path string, suite []*workloads.Benchmark, points []experiments.SampledPoint) error {
	var names []string
	for _, b := range suite {
		names = append(names, b.Name)
	}
	var outliers []string
	for name := range experiments.SampledOutliers {
		outliers = append(outliers, name)
	}
	sort.Strings(outliers)
	rep := sampledReport{
		Description: "Two-tier sampled simulation: accuracy-vs-speedup curve. Each point estimates every workload's baseline and LoopFrog cycle count from fast-functional tier-1 warming plus detailed windows, compared against full detailed runs. sim_speedup is full-pair wall time over sampled-pair wall time on this host; windows fan out over the worker pool, so multi-core hosts scale it by the core count.",
		Meta:        experiments.NewMeta("lfbench -sampled -sampledjson BENCH_sampled.json"),
		Workloads:   names,
		Budgets:     map[string]float64{"default": 100 * experiments.SampledErrBudget, "outlier": 100 * experiments.SampledOutlierBudget},
		Outliers:    outliers,
		Curve:       points,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSpectre runs the speculative-leak mitigation-cost study over suite:
// every workload's baseline / detection / mitigation triple, the leak profile
// of each, gated on the mitigated runs being leak-free. Returns false on any
// gate breach.
func runSpectre(suite []*workloads.Benchmark, jsonPath string) bool {
	rows, err := experiments.Spectre(suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfbench:", err)
		return false
	}
	fmt.Print(experiments.FormatSpectre(rows))
	if jsonPath != "" {
		if err := writeSpectreJSON(jsonPath, rows); err != nil {
			fmt.Fprintln(os.Stderr, "lfbench:", err)
			return false
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	fails := experiments.SpectreFailures(rows)
	for _, f := range fails {
		fmt.Fprintln(os.Stderr, "lfbench: FAIL:", f)
	}
	if len(fails) == 0 {
		fmt.Println("spectre mitigation gate: PASS")
	}
	return len(fails) == 0
}

// spectreReport is the BENCH_spectre.json schema.
type spectreReport struct {
	Description string                   `json:"description"`
	Meta        experiments.Meta         `json:"meta"`
	Rows        []experiments.SpectreRow `json:"rows"`
}

func writeSpectreJSON(path string, rows []experiments.SpectreRow) error {
	rep := spectreReport{
		Description: "Speculative-leak study: per-workload taint-detection leak profile (candidates = transient loads whose taint-derived address reached the cache; leaks = candidates confirmed by a squash) and the cycle cost of the ShadowBinding-style DelaySpeculativeLoadDeps mitigation, which holds dependents of speculative loads until promotion. Detection is metadata-only, so detect_cycles equals the stock LoopFrog cycle count; cost_pct is the mitigation's price against it.",
		Meta:        experiments.NewMeta("lfbench -spectre -spectrejson BENCH_spectre.json"),
		Rows:        rows,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runChaos sweeps the seeded fault matrix: every safe fault kind and their
// combination across the chaos workload suite, three seeds each, every run
// compared against the sequential reference. It prints one line per cell and
// reports whether all cells passed.
func runChaos(seed int64) bool {
	specs := []string{"conflict", "overflow", "kill", "poison", "mispredict", "all"}
	seeds := []int64{seed, seed + 1, seed + 2}
	entries, err := fault.RunMatrix(cpu.DefaultConfig(), workloads.ChaosSuite(), specs, seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfbench:", err)
		return false
	}
	fmt.Printf("Chaos matrix: %d workloads x %d specs x %d seeds\n",
		len(workloads.ChaosSuite()), len(specs), len(seeds))
	fmt.Printf("%-16s %-12s %6s %10s %9s  %s\n", "workload", "spec", "seed", "cycles", "injected", "result")
	failed := 0
	var injected uint64
	for _, e := range entries {
		result := "ok"
		if e.Err != "" {
			result = "ERROR: " + firstLine(e.Err)
			failed++
		} else if e.Diverged {
			result = "DIVERGED"
			failed++
		}
		injected += e.Injected
		fmt.Printf("%-16s %-12s %6d %10d %9d  %s\n", e.Workload, e.Spec, e.Seed, e.Cycles, e.Injected, result)
	}
	fmt.Printf("\n%d cells, %d faults injected, %d failures\n", len(entries), injected, failed)
	return failed == 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func quickSubset(suite []*workloads.Benchmark) []*workloads.Benchmark {
	keep := map[string]bool{"mcf": true, "omnetpp": true, "x264": true, "leela": true, "imagick": true, "gcc": true}
	var out []*workloads.Benchmark
	for _, b := range suite {
		if keep[b.Name] {
			out = append(out, b)
		}
	}
	return out
}

func printTable1() {
	cfg := cpu.DefaultConfig()
	fmt.Printf(`Table 1: simulation parameters
pipeline        %d-wide, %d threadlet contexts, front-end depth %d
windows         ROB %d, IQ %d, LQ %d, SQ %d (dynamically shared)
registers       %d int + %d fp physical
FUs             %d ALU pipes (%d branch-capable), %d mul/div, %d FP (%d div/sqrt), %d load, %d store
branch pred     TAGE %d tables + loop predictor, %d-entry BTB, %d-entry RAS
SSB             %d slices x %d B, %d B lines, %d B granules, read %d cyc / write %d cyc
conflict check  %d-cycle latency, exact sets (idealised Bloom filter)
L1I/L1D         %d KiB / %d KiB, L2 %d MiB, DRAM %d cycles
packing         target %d insts, max factor %d

`,
		cfg.Width, cfg.Threadlets, cfg.FrontendDepth,
		cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize,
		cfg.IntRegs, cfg.FPRegs,
		cfg.ALUs, cfg.Branches, cfg.MulDivs, cfg.FPs, cfg.FPDivs, cfg.LoadPipes, cfg.StorePipes,
		len(cfg.BPred.Histories), cfg.BPred.BTBEntries, cfg.BPred.RASEntries,
		cfg.Threadlets, cfg.SSB.SliceBytes, cfg.SSB.LineBytes, cfg.SSB.GranuleBytes,
		cfg.SSB.ReadLatency, cfg.SSB.WriteLatency,
		cfg.ConflictCheckLatency,
		cfg.Hier.L1I.SizeBytes>>10, cfg.Hier.L1D.SizeBytes>>10, cfg.Hier.L2.SizeBytes>>20, cfg.Hier.DRAMLatency,
		cfg.Pack.TargetSize, cfg.Pack.MaxFactor)
}
