package main

// The -fabric study: distributed sweep serving on an in-process 3-node
// fabric versus a single-node daemon. Both sides run identical job lists —
// a sweep of distinct loop programs, each submitted several times — through
// real HTTP servers, so the comparison includes every serving-layer cost
// (admission, lint preflight, dispatch, relay).
//
// Two phases, one BENCH_fabric.json:
//
//   - capacity: per-node run-cache capacity is sized below the sweep's
//     working set. The single node LRU-thrashes (every repeat re-simulates);
//     the fabric's consistent-hash routing partitions the sweep so each
//     node's share fits its cache and repeats stay resident. This is the
//     aggregate-cache throughput win, and it holds even on one core.
//   - affinity: caches unbounded on both sides. Shows the fabric's hit rate
//     matches single-node — routing on the fingerprint loses (almost) no
//     cache efficiency to stealing or hedging.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"loopfrog/internal/experiments"
	"loopfrog/internal/fabric"
	"loopfrog/internal/serve"
)

const fabricNodes = 3

// fabricJob is one sweep lane: a loop program whose trip count makes the
// simulation long enough that serving overhead is noise.
func fabricJob(i int) map[string]any {
	trips := 40000 + 4000*i
	asm := fmt.Sprintf(`
main:   li   t0, 0
        li   t1, %d
loop:   addi t0, t0, 1
        blt  t0, t1, loop
        halt
`, trips)
	return map[string]any{
		"name":     fmt.Sprintf("fabric-sweep-%d", i),
		"asm":      asm,
		"priority": "sweep",
	}
}

// fabricSweep submits every job with bounded client concurrency and returns
// the wall-clock time to drain the whole list.
func fabricSweep(url string, jobs []map[string]any) (time.Duration, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, 8)
	start := time.Now()
	for _, spec := range jobs {
		body, err := json.Marshal(spec)
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(name string, body []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			jobStart := time.Now()
			defer func() {
				if os.Getenv("LFBENCH_FABRIC_TRACE") != "" {
					fmt.Printf("  trace: %-16s submitted %7.2fs done %7.2fs\n",
						name, jobStart.Sub(start).Seconds(), time.Since(start).Seconds())
				}
			}()
			resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err == nil {
				var v struct {
					Status string `json:"status"`
					Error  string `json:"error"`
				}
				jerr := json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				switch {
				case jerr != nil:
					err = jerr
				case resp.StatusCode != http.StatusOK || v.Status != "done":
					err = fmt.Errorf("%s: status %d job %q error %q", name, resp.StatusCode, v.Status, v.Error)
				}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(spec["name"].(string), body)
	}
	wg.Wait()
	return time.Since(start), firstErr
}

// fabricSide is one measured topology within a phase.
type fabricSide struct {
	Seconds      float64 `json:"seconds"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

type fabricPhase struct {
	CachePerNode int          `json:"cache_entries_per_node"` // 0 = unbounded
	Single       fabricSide   `json:"single"`
	Fabric       fabricSide   `json:"fabric"`
	Speedup      float64      `json:"speedup"`
	Stats        fabric.Stats `json:"fabric_stats"`
}

type fabricReport struct {
	Schema   string           `json:"schema"`
	Meta     experiments.Meta `json:"meta"`
	Nodes    int              `json:"nodes"`
	Sweeps   int              `json:"sweep_lanes"`
	Repeats  int              `json:"repeats"`
	Jobs     int              `json:"jobs"`
	Capacity fabricPhase      `json:"capacity"`
	Affinity fabricPhase      `json:"affinity"`
	Speedup  float64          `json:"speedup"` // the capacity phase's headline number
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// runFabricPhase measures one cache configuration on both topologies.
// cacheCap <= 0 means unbounded.
func runFabricPhase(jobs []map[string]any, cacheCap int) (fabricPhase, error) {
	serveCache := cacheCap
	if serveCache <= 0 {
		serveCache = -1 // serve.Config: < 0 disables the bound
	}
	ph := fabricPhase{CachePerNode: cacheCap}

	single := serve.New(serve.Config{Runners: 1, Workers: 1, CacheCapacity: serveCache})
	sts := httptest.NewServer(single.Handler())
	singleDur, err := fabricSweep(sts.URL, jobs)
	singleHits, singleMisses := single.Harness().Cache.Hits(), single.Harness().Cache.Misses()
	sts.Close()
	if err != nil {
		return ph, err
	}

	type node struct {
		srv *serve.Server
		ts  *httptest.Server
	}
	var nodes []node
	// All nodes share this process's CPUs, so probe round-trips inflate under
	// sim load: soften the failure detector accordingly. Hedging is disabled
	// because it buys tail latency with duplicate work — the opposite of what
	// a capacity-bound throughput study measures.
	coord := fabric.NewCoordinator(fabric.Config{
		ProbeInterval: time.Second,
		ProbeTimeout:  10 * time.Second,
		HedgeDisabled: true,
		Detector:      fabric.DetectorConfig{MinInterval: 2 * time.Second},
	})
	for i := 0; i < fabricNodes; i++ {
		n := node{srv: serve.New(serve.Config{Runners: 1, Workers: 1, CacheCapacity: serveCache})}
		n.ts = httptest.NewServer(n.srv.Handler())
		if err := coord.AddWorker(fabric.JoinInfo{ID: fmt.Sprintf("w%d", i), URL: n.ts.URL, Runners: 1}); err != nil {
			return ph, err
		}
		nodes = append(nodes, n)
	}
	front := serve.New(serve.Config{Runners: 8, Workers: 1, Remote: coord})
	fts := httptest.NewServer(coord.Mount(front.Handler()))
	fabricDur, err := fabricSweep(fts.URL, jobs)
	ph.Stats = coord.Stats()
	var fabHits, fabMisses uint64
	for _, n := range nodes {
		fabHits += n.srv.Harness().Cache.Hits()
		fabMisses += n.srv.Harness().Cache.Misses()
	}
	fts.Close()
	coord.Close()
	for _, n := range nodes {
		n.ts.Close()
	}
	if err != nil {
		return ph, err
	}

	nJobs := len(jobs)
	ph.Single = fabricSide{
		Seconds:      singleDur.Seconds(),
		JobsPerSec:   float64(nJobs) / singleDur.Seconds(),
		CacheHitRate: hitRate(singleHits, singleMisses),
	}
	ph.Fabric = fabricSide{
		Seconds:      fabricDur.Seconds(),
		JobsPerSec:   float64(nJobs) / fabricDur.Seconds(),
		CacheHitRate: hitRate(fabHits, fabMisses),
	}
	ph.Speedup = ph.Fabric.JobsPerSec / ph.Single.JobsPerSec
	return ph, nil
}

func printFabricPhase(name string, ph fabricPhase) {
	capDesc := "unbounded cache"
	if ph.CachePerNode > 0 {
		capDesc = fmt.Sprintf("%d cache entries/node", ph.CachePerNode)
	}
	fmt.Printf("%s (%s):\n", name, capDesc)
	fmt.Printf("  single node:   %6.2fs  %5.1f jobs/s  hit rate %.2f\n",
		ph.Single.Seconds, ph.Single.JobsPerSec, ph.Single.CacheHitRate)
	fmt.Printf("  %d-node fabric: %6.2fs  %5.1f jobs/s  hit rate %.2f  -> %.2fx\n",
		fabricNodes, ph.Fabric.Seconds, ph.Fabric.JobsPerSec, ph.Fabric.CacheHitRate, ph.Speedup)
	fmt.Printf("  fabric stats: %d dispatches, %d steals, %d hedges (%d won), %d retries\n",
		ph.Stats.Dispatches, ph.Stats.Steals, ph.Stats.Hedges, ph.Stats.HedgesWon, ph.Stats.Retries)
}

// runFabric measures the sweep on both topologies and writes jsonPath.
// Reports false on any failure so main can exit non-zero.
func runFabric(jsonPath string, lanes, repeats int) bool {
	fail := func(err error) bool {
		fmt.Fprintln(os.Stderr, "lfbench: fabric:", err)
		return false
	}
	jobs := make([]map[string]any, 0, lanes*repeats)
	for r := 0; r < repeats; r++ {
		for i := 0; i < lanes; i++ {
			jobs = append(jobs, fabricJob(i))
		}
	}
	fmt.Printf("fabric study: %d sweep lanes x %d repeats = %d jobs, %d worker nodes, %d cores\n",
		lanes, repeats, len(jobs), fabricNodes, runtime.GOMAXPROCS(0))

	// The capacity phase sizes each node's cache below the sweep working set
	// (but above a 3-way partition's share of it): the aggregate distributed
	// cache is the resource being measured.
	capacity, err := runFabricPhase(jobs, lanes/2)
	if err != nil {
		return fail(err)
	}
	printFabricPhase("capacity", capacity)

	affinity, err := runFabricPhase(jobs, 0)
	if err != nil {
		return fail(err)
	}
	printFabricPhase("affinity", affinity)

	rep := fabricReport{
		Schema:   "lfbench/fabric/v1",
		Meta:     experiments.NewMeta("lfbench -fabric -fabricjson " + jsonPath),
		Nodes:    fabricNodes,
		Sweeps:   lanes,
		Repeats:  repeats,
		Jobs:     len(jobs),
		Capacity: capacity,
		Affinity: affinity,
		Speedup:  capacity.Speedup,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
		return fail(err)
	}
	fmt.Println("wrote", jsonPath)
	return true
}
