// Command lfservd is the LoopFrog simulation-as-a-service daemon: an
// HTTP/JSON front end over the sim.Harness worker pool with bounded
// admission queues, interactive/sweep priority lanes, a mandatory
// hint-legality preflight, an LRU-bounded run-cache, per-job deadlines, and
// server-sent-event progress streaming. See the Serving section of README.md
// for the API and DESIGN.md for the admission-control design.
//
// Usage:
//
//	lfservd [-addr :8080] [-runners N] [-queue N] [-workers N]
//	        [-cache N] [-timeout d] [-max-timeout d] [-pprof addr]
//
// -pprof opts into Go's net/http/pprof profiling handlers on a separate
// listener (e.g. -pprof localhost:6060 serves /debug/pprof/ there). The
// profiling surface never shares the service port, so the job API can be
// exposed without also exposing heap and CPU profiles.
//
// Fabric mode (see internal/fabric and the "Distributed serving" section of
// README.md) shards sweeps across nodes:
//
//	lfservd -coordinator [-fabric-workers name=url,...] [-chaos-fabric spec]
//	lfservd -worker -join http://coordinator:8080 [-name w1] [-advertise url]
//
// A coordinator routes jobs to registered workers over a consistent-hash
// ring keyed on the run-cache fingerprint, with health probing, hedged
// retries, and requeue on worker death; with no live workers it degrades to
// plain local execution. A worker is a normal daemon that additionally
// registers with (and heartbeats to) its coordinator. -chaos-fabric injects
// seeded worker kills/partitions/delays at the coordinator's transport for
// fault drills ("all" or "kill=P,partition=P,delay=P", seeded by
// -chaos-seed).
//
// SIGINT/SIGTERM starts a graceful drain: admission stops (healthz flips to
// 503), every admitted job completes, then the process exits. A second
// signal — or the -drain-timeout budget expiring — aborts the drain by
// cancelling the remaining jobs.
//
// Load mode (-load N) does not listen on -addr: it starts an in-process
// server on a loopback port, drives it with N concurrent clients submitting
// a mixed cached/uncached quickstart workload for -load-duration, verifies
// the saturation contract (every non-429 response succeeds, every 429
// carries Retry-After), and writes a BENCH_serve.json-style report with the
// sustained RPS and latency percentiles to -load-out.
//
// Exit status: 0 clean shutdown or passing load run, 1 failure, 2 usage.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"loopfrog/internal/fabric"
	"loopfrog/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	runners := flag.Int("runners", 0, "concurrent job executors (0 = GOMAXPROCS, max 8)")
	queue := flag.Int("queue", 0, "admission queue depth per priority lane (0 = 64)")
	workers := flag.Int("workers", 0, "sim.Harness worker pool size (0 = all cores)")
	cache := flag.Int("cache", 0, "run-cache LRU capacity (0 = default, <0 = unbounded)")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = 60s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on requested per-job deadlines (0 = 5m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown")
	load := flag.Int("load", 0, "run the load harness with N concurrent clients instead of serving")
	loadDuration := flag.Duration("load-duration", 10*time.Second, "load harness run time")
	loadOut := flag.String("load-out", "BENCH_serve.json", "load harness report path")
	loadProg := flag.String("load-prog", "examples/quickstart/asm/quickstart.s", "assembly file the load harness submits")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")
	coordinator := flag.Bool("coordinator", false, "run as fabric coordinator: route jobs to registered workers")
	fabricWorkers := flag.String("fabric-workers", "", "static worker list for -coordinator: comma-separated name=url (or bare urls)")
	worker := flag.Bool("worker", false, "run as fabric worker: serve jobs and register with -join")
	join := flag.String("join", "", "coordinator base URL a -worker registers with")
	name := flag.String("name", "", "this worker's fabric name (default host:port)")
	advertise := flag.String("advertise", "", "base URL the coordinator reaches this worker at (default http://127.0.0.1<addr>)")
	chaosFabric := flag.String("chaos-fabric", "", "coordinator chaos spec: \"all\" or kill=P,partition=P,delay=P (empty = off)")
	chaosSeed := flag.Int64("chaos-seed", 1, "base seed for -chaos-fabric's deterministic streams")
	flag.Parse()

	cfg := serve.Config{
		Runners:        *runners,
		QueueDepth:     *queue,
		Workers:        *workers,
		CacheCapacity:  *cache,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}

	if *load > 0 {
		if err := runLoad(cfg, *load, *loadDuration, *loadOut, *loadProg); err != nil {
			fmt.Fprintln(os.Stderr, "lfservd:", err)
			os.Exit(1)
		}
		return
	}
	if *coordinator && *worker {
		fmt.Fprintln(os.Stderr, "lfservd: -coordinator and -worker are mutually exclusive")
		os.Exit(2)
	}
	if *worker && *join == "" {
		fmt.Fprintln(os.Stderr, "lfservd: -worker requires -join")
		os.Exit(2)
	}

	if *pprofAddr != "" {
		// An explicit mux with only the pprof handlers: importing
		// net/http/pprof registers on http.DefaultServeMux, which this
		// process never serves, so the handlers are wired by hand and the
		// profiling listener exposes nothing else.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func(addr string) {
			fmt.Printf("lfservd: pprof on %s/debug/pprof/\n", addr)
			if err := http.ListenAndServe(addr, pm); err != nil {
				fmt.Fprintln(os.Stderr, "lfservd: pprof:", err)
			}
		}(*pprofAddr)
	}

	var coord *fabric.Coordinator
	if *coordinator {
		fcfg := fabric.Config{}
		if *chaosFabric != "" {
			chaos, err := fabric.ParseChaos(*chaosFabric, *chaosSeed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lfservd:", err)
				os.Exit(2)
			}
			fcfg.WrapTransport = chaos.WrapTransport
			fmt.Printf("lfservd: fabric chaos armed: %s seed=%d\n", *chaosFabric, *chaosSeed)
		}
		coord = fabric.NewCoordinator(fcfg)
		for _, entry := range strings.Split(*fabricWorkers, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			wname, url, ok := strings.Cut(entry, "=")
			if !ok {
				url = wname
				wname = strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
			}
			if err := coord.AddWorker(fabric.JoinInfo{ID: wname, URL: url}); err != nil {
				fmt.Fprintln(os.Stderr, "lfservd:", err)
				os.Exit(2)
			}
		}
		cfg.Remote = coord
	}

	s := serve.New(cfg)
	handler := s.Handler()
	if coord != nil {
		handler = coord.Mount(handler)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("lfservd: serving on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	joinCtx, joinCancel := context.WithCancel(context.Background())
	defer joinCancel()
	if *worker {
		info := fabric.JoinInfo{ID: *name, URL: *advertise, Runners: *runners}
		if info.URL == "" {
			host := *addr
			if strings.HasPrefix(host, ":") {
				host = "127.0.0.1" + host
			}
			info.URL = "http://" + host
		}
		if info.ID == "" {
			info.ID = strings.TrimPrefix(strings.TrimPrefix(info.URL, "http://"), "https://")
		}
		go fabric.JoinLoop(joinCtx, *join, info, 5*time.Second, func(format string, args ...any) {
			fmt.Printf("lfservd: "+format+"\n", args...)
		})
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "lfservd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("lfservd: %s, draining (up to %s; signal again to abort)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sigc
		cancel()
	}()
	joinCancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "lfservd:", err)
	}
	if coord != nil {
		coord.Close()
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = httpSrv.Shutdown(shutdownCtx)
	cancel()
	fmt.Println("lfservd: drained")
}

// loadReport is the BENCH_serve.json schema.
type loadReport struct {
	Description  string  `json:"description"`
	Date         string  `json:"date"`
	Command      string  `json:"command"`
	Host         string  `json:"host"`
	Clients      int     `json:"clients"`
	DurationSec  float64 `json:"duration_sec"`
	Requests     uint64  `json:"requests"`
	Succeeded    uint64  `json:"succeeded"`
	Rejected429  uint64  `json:"rejected_429"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	RPS          float64 `json:"sustained_rps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Note         string  `json:"note"`
}

// runLoad drives an in-process server at saturation with a mixed
// cached/uncached workload and enforces the acceptance contract.
func runLoad(cfg serve.Config, clients int, duration time.Duration, outPath, progPath string) error {
	src, err := os.ReadFile(progPath)
	if err != nil {
		return fmt.Errorf("load program: %w", err)
	}
	s := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	var (
		requests, succeeded, rejected, failures atomic.Uint64
		latMu                                   sync.Mutex
		latencies                               []time.Duration
		firstErr                                atomic.Value
	)
	fail := func(format string, args ...any) {
		err := fmt.Errorf(format, args...)
		firstErr.CompareAndSwap(nil, err)
		failures.Add(1)
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				// Even clients resubmit the same job (cache hits / flight
				// joins); odd clients vary max_cycles so every request is a
				// distinct cache key and really simulates.
				spec := map[string]any{
					"name":     "quickstart-load",
					"asm":      string(src),
					"ab":       true,
					"priority": "sweep",
				}
				if c%2 == 1 {
					spec["max_cycles"] = 1_000_000 + int64(c)*10_000 + int64(i)
					spec["priority"] = "interactive"
				}
				body, _ := json.Marshal(spec)
				start := time.Now()
				resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					fail("POST /v1/jobs: %v", err)
					return
				}
				requests.Add(1)
				payload, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					succeeded.Add(1)
					latMu.Lock()
					latencies = append(latencies, time.Since(start))
					latMu.Unlock()
					var out struct {
						Result *struct {
							Speedup float64 `json:"speedup"`
						} `json:"result"`
					}
					if err := json.Unmarshal(payload, &out); err != nil || out.Result == nil {
						fail("bad 200 body: %v: %s", err, payload)
					}
				case http.StatusTooManyRequests:
					rejected.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						fail("429 without Retry-After")
					}
					time.Sleep(50 * time.Millisecond)
				default:
					fail("unexpected status %d: %s", resp.StatusCode, payload)
				}
			}
		}(c)
	}
	startWall := time.Now()
	wg.Wait()
	wall := time.Since(startWall)
	if wall > duration {
		wall = duration + (wall-duration)/2 // tail requests ran past the deadline
	}

	st := s.Harness().Stats()
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	_ = httpSrv.Close()

	latMu.Lock()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var p50, p99 float64
	if n := len(latencies); n > 0 {
		p50 = float64(latencies[n/2].Milliseconds())
		p99 = float64(latencies[int(float64(n-1)*0.99)].Milliseconds())
	}
	latMu.Unlock()

	served := st.CacheHits + st.CacheFlightJoins + st.CacheMisses
	hitRate := 0.0
	if served > 0 {
		hitRate = float64(st.CacheHits+st.CacheFlightJoins) / float64(served)
	}
	rep := loadReport{
		Description: fmt.Sprintf("lfservd sustained load: %d concurrent clients, mixed cached/uncached quickstart AB jobs, %s", clients, duration),
		Date:        time.Now().Format("2006-01-02"),
		Command:     fmt.Sprintf("lfservd -load %d -load-duration %s", clients, duration),
		Host:        fmt.Sprintf("%s/%s, GOMAXPROCS=%d", runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)),
		Clients:     clients,
		DurationSec: wall.Seconds(),
		Requests:    requests.Load(),
		Succeeded:   succeeded.Load(),
		Rejected429: rejected.Load(),
		CacheHitRate: func() float64 {
			return float64(int(hitRate*1000)) / 1000
		}(),
		RPS:   float64(succeeded.Load()) / wall.Seconds(),
		P50Ms: p50,
		P99Ms: p99,
		Note:  "every non-429 response must be a 200 with a speedup; every 429 must carry Retry-After; the server must drain cleanly after the run",
	}
	b, _ := json.MarshalIndent(rep, "", "  ")
	b = append(b, '\n')
	if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("lfservd load: %d requests, %d ok, %d rejected (429), %.1f req/s, p50 %.0fms p99 %.0fms, cache hit rate %.2f -> %s\n",
		rep.Requests, rep.Succeeded, rep.Rejected429, rep.RPS, rep.P50Ms, rep.P99Ms, hitRate, outPath)

	if failures.Load() > 0 {
		return fmt.Errorf("load contract violated (%d failures; first: %v)", failures.Load(), firstErr.Load())
	}
	if succeeded.Load() == 0 {
		return errors.New("load run completed zero jobs")
	}
	return nil
}
