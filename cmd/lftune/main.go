// Command lftune is the budgeted hint autotuner driver: it closes the
// compile→simulate→recompile loop for one program. Per @loopfrog loop it
// enumerates hint-selection and engine-knob variants, prunes the space with
// the linter's LF2xx profitability notes, and spends a fixed evaluation
// budget by successive halving — wide-and-cheap sampled rungs, survivors
// promoted to full detailed runs. The static default selection is anchored
// through every rung, so the reported winner is never worse than what the
// compiler would pick on its own.
//
// Usage:
//
//	lftune [flags] file.ll        tune a LoopLang source file
//	lftune [flags] -bench name    tune a suite workload by name
//
// Flags:
//
//	-budget N    evaluation budget in rung-0-equivalent units (default 128)
//	-eta N       successive-halving fraction (default 3)
//	-seed N      recorded in the report (the search is deterministic)
//	-workers N   harness worker pool size (default GOMAXPROCS)
//	-json        emit the full search report as JSON
//	-o file      write the winning variant's recompiled image (disassembly)
//	-gate        exit 1 if the winner does not at least match the static
//	             selection, or the winning image fails the linter
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"loopfrog/internal/compiler"
	"loopfrog/internal/lint"
	"loopfrog/internal/sim"
	"loopfrog/internal/tune"
	"loopfrog/internal/workloads"
)

func main() {
	os.Exit(run())
}

func run() int {
	bench := flag.String("bench", "", "tune a suite workload by name instead of a file")
	budget := flag.Int("budget", tune.DefaultBudget, "evaluation budget in rung-0-equivalent units")
	eta := flag.Int("eta", tune.DefaultEta, "successive-halving fraction")
	seed := flag.Int64("seed", 0, "seed recorded in the report")
	workers := flag.Int("workers", 0, "harness worker pool size (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit the full search report as JSON")
	outFile := flag.String("o", "", "write the winning variant's recompiled image to this file")
	gate := flag.Bool("gate", false, "exit 1 unless the winner at least matches the static selection and lints clean")
	flag.Parse()

	var name, src string
	switch {
	case *bench != "":
		suite := append(workloads.CPU2017(), workloads.CPU2006()...)
		b := workloads.ByName(suite, *bench)
		if b == nil {
			fmt.Fprintf(os.Stderr, "lftune: unknown benchmark %q\n", *bench)
			return 2
		}
		if b.Source() == "" {
			fmt.Fprintf(os.Stderr, "lftune: %s is a prebuilt asm workload; only LoopLang workloads can be retuned\n", *bench)
			return 2
		}
		name, src = b.Name, b.Source()
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "lftune:", err)
			return 1
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: lftune [flags] file.ll | lftune [flags] -bench name")
		return 2
	}

	h := &sim.Harness{Workers: *workers, Cache: sim.NewRunCache()}
	spec := tune.Spec{Program: name, Source: src, Budget: *budget, Eta: *eta, Seed: *seed}
	rep, err := tune.Tune(context.Background(), spec, tune.Local{H: h})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lftune:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "lftune:", err)
			return 1
		}
	} else {
		writeText(rep, h)
	}

	winnerClean := true
	if *outFile != "" || *gate {
		prog, _, err := compiler.CompileOpts(name, src, rep.Winner.Variant.CompilerOpts())
		if err != nil {
			fmt.Fprintln(os.Stderr, "lftune: recompile winner:", err)
			return 1
		}
		lrep := lint.Run(prog, lint.Options{})
		if lrep.Failed(false) {
			winnerClean = false
			for i := range lrep.Diags {
				d := &lrep.Diags[i]
				if d.Severity == lint.SevError {
					fmt.Fprintf(os.Stderr, "lftune: winner image: %s [%s]: %s\n",
						d.Position(name), d.Code, d.Message)
				}
			}
		}
		if *outFile != "" {
			if err := os.WriteFile(*outFile, []byte(prog.Disassemble()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "lftune:", err)
				return 1
			}
		}
	}

	if *gate {
		if !winnerClean {
			fmt.Fprintln(os.Stderr, "lftune: gate: winning image fails the linter")
			return 1
		}
		// Scores at different tiers are not comparable: a budget-starved
		// search can promote the winner past the anchor's deepest rung.
		if rep.Winner.Tier == rep.Static.Tier && rep.Winner.Score < rep.Static.Score {
			fmt.Fprintf(os.Stderr, "lftune: gate: winner score %.4f below static %.4f\n",
				rep.Winner.Score, rep.Static.Score)
			return 1
		}
	}
	return 0
}

func writeText(rep *tune.Report, h *sim.Harness) {
	fmt.Printf("%s: %d loop site(s), %d variant(s) enumerated, %d pruned, budget %d (spent %d)\n",
		rep.Program, len(rep.Loops), rep.SpaceSize, len(rep.Pruned), rep.Budget, rep.Spent)
	for _, l := range rep.Loops {
		state := "selected"
		if !l.Selected {
			state = "de-selected: " + l.Reason
		}
		fmt.Printf("  loop %s:%d %s\n", l.Func, l.Line, state)
	}
	for _, p := range rep.Pruned {
		fmt.Printf("  pruned #%d (%s): %s\n", p.Variant.ID, p.Variant.Desc(), p.Rule)
	}
	for _, r := range rep.Rungs {
		fmt.Printf("rung %d (%s): %d evaluated, baseline %.0f cycles, %d unit(s)\n",
			r.Tier, r.TierName, len(r.Evaluated), r.BaseCycles, r.CostUnits)
		for _, s := range r.Evaluated {
			mark := " "
			if contains(r.Promoted, s.Variant.ID) {
				mark = "+"
			}
			if s.Err != "" {
				fmt.Printf("  %s #%-3d %-28s FAILED: %s\n", mark, s.Variant.ID, s.Variant.Desc(), s.Err)
				continue
			}
			fmt.Printf("  %s #%-3d %-28s score %.4f (%.0f cycles)\n",
				mark, s.Variant.ID, s.Variant.Desc(), s.Score, s.Cycles)
		}
	}
	fmt.Printf("winner: #%d (%s) score %.4f at %s\n",
		rep.Winner.Variant.ID, rep.Winner.Variant.Desc(), rep.Winner.Score, tierName(rep.Winner.Tier))
	fmt.Printf("static: #%d score %.4f — winner %s static\n",
		rep.Static.Variant.ID, rep.Static.Score, vs(rep))
	st := h.Stats()
	fmt.Printf("search cost: %d unit(s); cache hits %d, joins %d, misses %d\n",
		rep.Spent, st.CacheHits, st.CacheFlightJoins, st.CacheMisses)
}

func vs(rep *tune.Report) string {
	switch {
	case rep.Winner.Tier != rep.Static.Tier:
		return "measured at a deeper tier than"
	case rep.WinnerBeatsStatic():
		return "beats"
	case rep.Winner.Score == rep.Static.Score:
		return "matches"
	default:
		return "trails"
	}
}

func tierName(i int) string {
	tiers := tune.Tiers()
	if i >= 0 && i < len(tiers) {
		return tiers[i].Name
	}
	return fmt.Sprint(i)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
