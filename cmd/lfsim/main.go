// Command lfsim runs one program on the simulated core and prints run
// statistics. Inputs are LoopLang (.ll) or LFISA assembly (.s) files, or a
// named benchmark from the built-in suites with -bench.
//
// Usage:
//
//	lfsim [-baseline] [-threadlets N] [-nopack] [-ab] [-parallel N]
//	      [-lint] [-trace file] [-metrics file]
//	      [-cpuprofile file] [-memprofile file] (-bench name | file)
//
// -lint runs the hint-legality linter (see cmd/lflint) as a preflight and
// refuses to simulate a program with legality errors. Invalid flag values
// exit 2 with a usage message.
//
// -trace writes a Perfetto/chrome://tracing-loadable trace-event JSON file
// (threadlet epoch spans plus a commit-slot attribution counter track);
// -metrics writes the full telemetry registry snapshot as JSON. See the
// Observability section of DESIGN.md for the schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"loopfrog/internal/asm"
	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/lint"
	"loopfrog/internal/sim"
	"loopfrog/internal/telemetry"
	"loopfrog/internal/workloads"
)

func main() {
	baseline := flag.Bool("baseline", false, "treat hints as NOPs (sequential baseline)")
	threadlets := flag.Int("threadlets", 4, "threadlet contexts")
	nopack := flag.Bool("nopack", false, "disable iteration packing")
	ab := flag.Bool("ab", false, "run baseline and LoopFrog, print the speedup")
	bench := flag.String("bench", "", "run a named built-in benchmark instead of a file")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = all cores)")
	tracePath := flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON file")
	metricsPath := flag.String("metrics", "", "write a telemetry metrics JSON file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	preflight := flag.Bool("lint", false, "lint the program before simulating; refuse to run on errors")
	flag.Parse()

	// Usage errors exit 2, before any work happens.
	if *threadlets < 1 {
		fmt.Fprintf(os.Stderr, "lfsim: -threadlets must be at least 1 (got %d)\n", *threadlets)
		flag.Usage()
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "lfsim: -parallel must be non-negative (got %d)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}

	sim.SetParallelism(*parallel)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lfsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lfsim:", err)
			}
		}()
	}

	prog, err := loadProgram(*bench, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfsim:", err)
		os.Exit(1)
	}

	if *preflight {
		rep := lint.Run(prog, lint.Options{})
		for _, d := range rep.Diags {
			if d.Severity != lint.SevInfo {
				fmt.Fprintf(os.Stderr, "lfsim: lint: %s: %s [%s]: %s\n",
					d.Position(rep.Program), d.Severity, d.Code, d.Message)
			}
		}
		if rep.Errors() > 0 {
			fmt.Fprintln(os.Stderr, "lfsim: lint found hint-legality errors; refusing to simulate")
			os.Exit(1)
		}
	}

	cfg := cpu.DefaultConfig()
	cfg.Threadlets = *threadlets
	if *nopack {
		cfg.Pack.Enabled = false
	}
	if *baseline {
		cfg = sim.BaselineOf(cfg)
	}

	if *ab {
		stats, err := sim.RunJobs([]sim.Job{
			{Cfg: sim.BaselineOf(cfg), Prog: prog},
			{Cfg: cfg, Prog: prog},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
		base, lf := stats[0], stats[1]
		fmt.Printf("baseline: %8d cycles  IPC %.2f\n", base.Cycles, base.IPC())
		fmt.Printf("loopfrog: %8d cycles  IPC %.2f\n", lf.Cycles, lf.IPC())
		fmt.Printf("speedup:  %.3fx\n", float64(base.Cycles)/float64(lf.Cycles))
		if *metricsPath != "" {
			reg := telemetry.NewRegistry()
			if err := telemetry.CollectHarness(reg, sim.DefaultHarness()); err == nil {
				err = writeRegistry(reg, *metricsPath)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "lfsim:", err)
				os.Exit(1)
			}
		}
		return
	}

	// The single-run path drives a machine directly so the telemetry layer
	// can hook it: -trace streams lifecycle spans and commit-slot counters
	// while the run executes, -metrics snapshots every component after it.
	m, err := cpu.NewMachine(cfg, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfsim:", err)
		os.Exit(1)
	}
	var tr *telemetry.Trace
	var mt *telemetry.MachineTracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
		tr = telemetry.NewTrace(f)
		mt = telemetry.AttachMachine(m, tr, 0)
	}
	st, runErr := m.Run()
	if mt != nil {
		mt.Finish()
		if err := tr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lfsim: trace:", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		reg := telemetry.NewRegistry()
		if err := telemetry.CollectMachine(reg, m); err == nil {
			err = writeRegistry(reg, *metricsPath)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "lfsim:", runErr)
		os.Exit(1)
	}
	printStats(st)
}

func writeRegistry(reg *telemetry.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadProgram(bench string, args []string) (*asm.Program, error) {
	if bench != "" {
		for _, suite := range [][]*workloads.Benchmark{workloads.CPU2017(), workloads.CPU2006()} {
			if b := workloads.ByName(suite, bench); b != nil {
				return b.Program()
			}
		}
		return nil, fmt.Errorf("unknown benchmark %q", bench)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: lfsim [flags] (-bench name | file.ll | file.s)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".s") {
		return asm.Assemble(args[0], string(src))
	}
	prog, diags, err := compiler.Compile(args[0], string(src))
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, "lfsim: note:", d)
	}
	return prog, err
}

func printStats(st *cpu.Stats) {
	fmt.Printf("cycles            %d\n", st.Cycles)
	fmt.Printf("instructions      %d (IPC %.2f)\n", st.ArchInsts, st.IPC())
	fmt.Printf("branches          %d (%.2f%% mispredicted)\n", st.Branches, 100*st.MispredictRate())
	fmt.Printf("loads/stores      %d/%d\n", st.Loads, st.Stores)
	fmt.Printf("detaches          %d (spawns %d, packed %d, no-context %d)\n",
		st.Detaches, st.Spawns, st.PackedSpawns, st.DetachNoContext)
	fmt.Printf("threadlet retires %d\n", st.Retires)
	fmt.Printf("squashes          conflict=%d overflow=%d sync=%d pack=%d wrongpath=%d external=%d\n",
		st.Squashes[0], st.Squashes[1], st.Squashes[2], st.Squashes[3], st.Squashes[4], st.Squashes[5])
	fmt.Printf("failed spec insts %d\n", st.SpecCommitted)
	total := uint64(0)
	for _, c := range st.LiveCycles {
		total += c
	}
	if total > 0 {
		fmt.Printf("occupancy         1:%d%% 2:%d%% 3:%d%% 4:%d%%\n",
			100*st.LiveCycles[0]/total, 100*st.LiveCycles[1]/total,
			100*st.LiveCycles[2]/total, 100*st.LiveCycles[3]/total)
	}
}
