// Command lfsim runs one program on the simulated core and prints run
// statistics. Inputs are LoopLang (.ll) or LFISA assembly (.s) files, or a
// named benchmark from the built-in suites with -bench.
//
// Usage:
//
//	lfsim [-baseline] [-threadlets N] [-nopack] [-ab] [-parallel N]
//	      [-sampled [-interval N] [-window N] [-warmup N]]
//	      [-spectre] [-mitigate]
//	      [-lint] [-faults spec] [-seed N] [-check]
//	      [-trace file] [-metrics file]
//	      [-cpuprofile file] [-memprofile file] (-bench name | file)
//
// -sampled estimates whole-run cycles with the two-tier sampled pipeline
// instead of simulating every instruction in the detailed model: tier 1
// fast-forwards the program functionally (warming predictor, cache and
// LoopFrog-engine state) and emits a checkpoint every -interval instructions;
// tier 2 simulates a detailed window per checkpoint (-warmup settle +
// -window measured instructions) with the windows fanned out across the
// worker pool, and the per-interval weighting combines the window IPCs into
// the whole-run estimate. Zero values take the tuned defaults
// (sim.DefaultSampleConfig). Combine with -ab for a sampled baseline/LoopFrog
// speedup estimate off a single tier-1 pass. Sampled runs are estimates over
// measured windows, so -faults and -check (whole-run machinery) refuse to
// combine with it. -trace works with a sampled run: every detailed window
// streams into one trace file, window i on trace pid i+1, so the windows
// render as separate process lanes in the trace viewer (-ab -trace still
// refuses: two configurations would interleave in one file).
//
// -spectre tracks taint through transient execution (wrong-path and
// pre-promotion speculative loads) and reports every confirmed speculative
// leak — a squashed load whose address derived from a transiently loaded
// value after it probed the cache — as a JSON report on stdout after the run
// statistics. A run with confirmed leaks exits 1; a clean run exits 0. The
// tracking is metadata-only: cycles and committed instructions are identical
// to an untracked run. -mitigate enables the ShadowBinding-style defence
// (cpu.Config.DelaySpeculativeLoadDeps): dependents of speculative loads
// stall until the load is promoted, which eliminates taint-derived addresses
// by construction at a timing cost; combine with -spectre to verify the leak
// report comes back clean. Both refuse to combine with -sampled — taint
// state cannot survive checkpoint seeding — and -spectre refuses -ab (the
// A/B mitigation-cost study lives in lfbench -spectre).
//
// -lint runs the hint-legality linter (see cmd/lflint) as a preflight and
// refuses to simulate a program with legality errors. Invalid flag values
// exit 2 with a usage message.
//
// -faults installs a deterministic fault-injection plan (internal/fault
// grammar: "all", or "kind[=prob],..." over conflict, conflict-miss,
// overflow, kill, poison, mispredict, panic), seeded by -seed. -check
// verifies the final architectural state (result register + memory) against
// the sequential reference interpreter after the run — the standard way to
// demonstrate that every injected fault was recovered exactly.
//
// Exit status: 0 success, 1 simulation failure (including watchdog trips,
// whose diagnostic snapshot is printed, and -check divergence), 2 usage.
//
// -trace writes a Perfetto/chrome://tracing-loadable trace-event JSON file
// (threadlet epoch spans plus a commit-slot attribution counter track);
// -metrics writes the full telemetry registry snapshot as JSON. See the
// Observability section of DESIGN.md for the schema.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"loopfrog/internal/asm"
	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/fault"
	"loopfrog/internal/lint"
	"loopfrog/internal/sim"
	"loopfrog/internal/telemetry"
	"loopfrog/internal/workloads"
)

func main() {
	baseline := flag.Bool("baseline", false, "treat hints as NOPs (sequential baseline)")
	threadlets := flag.Int("threadlets", 4, "threadlet contexts")
	nopack := flag.Bool("nopack", false, "disable iteration packing")
	ab := flag.Bool("ab", false, "run baseline and LoopFrog, print the speedup")
	bench := flag.String("bench", "", "run a named built-in benchmark instead of a file")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = all cores)")
	tracePath := flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON file")
	metricsPath := flag.String("metrics", "", "write a telemetry metrics JSON file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	preflight := flag.Bool("lint", false, "lint the program before simulating; refuse to run on errors")
	faults := flag.String("faults", "", "fault-injection spec (e.g. \"all\" or \"conflict=0.05,kill\")")
	seed := flag.Int64("seed", 1, "fault-injection seed")
	check := flag.Bool("check", false, "verify the final state against the sequential reference")
	sampled := flag.Bool("sampled", false, "two-tier sampled estimate instead of a full detailed run")
	spectre := flag.Bool("spectre", false, "track speculative taint, print a JSON leak report, exit 1 on confirmed leaks")
	mitigate := flag.Bool("mitigate", false, "delay dependents of speculative loads until promotion (ShadowBinding-style)")
	interval := flag.Uint64("interval", 0, "sampled checkpoint interval in instructions (0 = default)")
	window := flag.Uint64("window", 0, "sampled measured window in instructions (0 = default)")
	warmup := flag.Uint64("warmup", 0, "sampled detailed warmup per window in instructions (0 = default)")
	flag.Parse()

	// Usage errors exit 2, before any work happens.
	if *threadlets < 1 {
		fmt.Fprintf(os.Stderr, "lfsim: -threadlets must be at least 1 (got %d)\n", *threadlets)
		flag.Usage()
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "lfsim: -parallel must be non-negative (got %d)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}
	plan, err := fault.Parse(*faults, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfsim:", err)
		flag.Usage()
		os.Exit(2)
	}
	if (*spectre || *mitigate) && *sampled {
		fmt.Fprintln(os.Stderr, "lfsim: -spectre/-mitigate are incompatible with -sampled: taint state cannot survive checkpoint seeding")
		flag.Usage()
		os.Exit(2)
	}
	if *spectre && *ab {
		fmt.Fprintln(os.Stderr, "lfsim: -spectre is incompatible with -ab; use lfbench -spectre for the A/B mitigation-cost study")
		flag.Usage()
		os.Exit(2)
	}
	if *bench == "" && len(flag.Args()) != 1 {
		fmt.Fprintln(os.Stderr, "lfsim: need exactly one input (-bench name | file.ll | file.s)")
		flag.Usage()
		os.Exit(2)
	}

	sim.SetParallelism(*parallel)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lfsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lfsim:", err)
			}
		}()
	}

	prog, err := loadProgram(*bench, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfsim:", err)
		os.Exit(1)
	}

	if *preflight {
		rep, perr := lint.Preflight(prog)
		for _, d := range rep.Diags {
			if d.Severity != lint.SevInfo {
				fmt.Fprintf(os.Stderr, "lfsim: lint: %s: %s [%s]: %s\n",
					d.Position(rep.Program), d.Severity, d.Code, d.Message)
			}
		}
		if perr != nil {
			fmt.Fprintln(os.Stderr, "lfsim: lint found hint-legality errors; refusing to simulate")
			os.Exit(1)
		}
	}

	cfg := cpu.DefaultConfig()
	cfg.Threadlets = *threadlets
	if *nopack {
		cfg.Pack.Enabled = false
	}
	if *baseline {
		cfg = sim.BaselineOf(cfg)
	}
	cfg.SpectreAnalysis = *spectre
	cfg.DelaySpeculativeLoadDeps = *mitigate

	if *sampled {
		// Sampled runs estimate timing from windows; fault injection and
		// state checks need the full detailed machine. Tracing works per
		// window (each window lands on its own trace pid), but an AB pair
		// would interleave two configurations in one file, so -ab -trace
		// still refuses.
		if *faults != "" || *check {
			fmt.Fprintln(os.Stderr, "lfsim: -sampled is incompatible with -faults and -check")
			flag.Usage()
			os.Exit(2)
		}
		if *tracePath != "" && *ab {
			fmt.Fprintln(os.Stderr, "lfsim: -sampled -ab is incompatible with -trace (two configurations would share one trace)")
			flag.Usage()
			os.Exit(2)
		}
		sc := sim.SampleConfig{Interval: *interval, Window: *window, Warmup: *warmup}
		if err := runSampled(cfg, prog, sc, *ab, *tracePath); err != nil {
			printRunError(err)
			os.Exit(1)
		}
		return
	}

	if *ab {
		// Injection applies to the LoopFrog run only: the baseline stays the
		// clean reference timing.
		stats, err := sim.RunJobs([]sim.Job{
			{Cfg: sim.BaselineOf(cfg), Prog: prog},
			{Cfg: cfg, Prog: prog, Faults: *faults, Seed: *seed},
		})
		if err != nil {
			printRunError(err)
			os.Exit(1)
		}
		base, lf := stats[0], stats[1]
		fmt.Printf("baseline: %8d cycles  IPC %.2f\n", base.Cycles, base.IPC())
		fmt.Printf("loopfrog: %8d cycles  IPC %.2f\n", lf.Cycles, lf.IPC())
		fmt.Printf("speedup:  %.3fx\n", float64(base.Cycles)/float64(lf.Cycles))
		if *metricsPath != "" {
			reg := telemetry.NewRegistry()
			if err := telemetry.CollectHarness(reg, sim.DefaultHarness()); err == nil {
				err = writeRegistry(reg, *metricsPath)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "lfsim:", err)
				os.Exit(1)
			}
		}
		return
	}

	// The single-run path drives a machine directly so the telemetry layer
	// can hook it: -trace streams lifecycle spans and commit-slot counters
	// while the run executes, -metrics snapshots every component after it.
	m, err := cpu.NewMachine(cfg, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfsim:", err)
		os.Exit(1)
	}
	if plan != nil {
		m.SetFaultInjector(plan)
	}
	var tr *telemetry.Trace
	var mt *telemetry.MachineTracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
		tr = telemetry.NewTrace(f)
		mt = telemetry.AttachMachine(m, tr, 0)
	}
	st, runErr := m.Run()
	if mt != nil {
		mt.Finish()
		if err := tr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lfsim: trace:", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		reg := telemetry.NewRegistry()
		if err := telemetry.CollectMachine(reg, m); err == nil {
			err = writeRegistry(reg, *metricsPath)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		printRunError(runErr)
		os.Exit(1)
	}
	printStats(st)
	if plan != nil {
		printInjected(plan)
	}
	if *check {
		// Compare the ABI result register and all of memory: the hint
		// contract does not preserve dead body temporaries, so the full
		// register file is only comparable for normalising programs.
		div, err := fault.Check(m, prog, fault.CheckOpts{Regs: fault.ResultRegs()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
		if div != "" {
			fmt.Fprintf(os.Stderr, "lfsim: state diverged from sequential reference: %s\n", div)
			os.Exit(1)
		}
		fmt.Println("check: final state matches the sequential reference (x10 + memory)")
	}
	if *spectre {
		rep := m.LeakReport()
		out := struct {
			Program   string `json:"program"`
			Mitigated bool   `json:"mitigated"`
			cpu.LeakReport
		}{Program: prog.Name, Mitigated: *mitigate, LeakReport: rep}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "lfsim:", err)
			os.Exit(1)
		}
		if rep.Confirmed > 0 {
			fmt.Fprintf(os.Stderr, "lfsim: %d speculative leak(s) confirmed at %d site(s)\n", rep.Confirmed, len(rep.Sites))
			os.Exit(1)
		}
	}
}

// runSampled runs the two-tier sampled pipeline and prints its estimate. With
// ab it runs the baseline/LoopFrog pair off one tier-1 pass and prints the
// phase-weighted speedup; otherwise it estimates the single configured run.
// A non-empty tracePath streams every detailed window into one trace file,
// window i on trace pid i+1 (cache-satisfied windows leave no spans).
func runSampled(cfg cpu.Config, prog *asm.Program, sc sim.SampleConfig, ab bool, tracePath string) error {
	if ab {
		res, err := sim.RunSampledAB(cfg, prog, sc)
		if err != nil {
			return err
		}
		fmt.Printf("baseline: %8.0f cycles (est)  IPC %.2f\n", res.Base.EstCycles, res.Base.IPC())
		fmt.Printf("loopfrog: %8.0f cycles (est)  IPC %.2f\n", res.LF.EstCycles, res.LF.IPC())
		fmt.Printf("speedup:  %.3fx (phase-weighted estimate)\n", res.EstSpeedup)
		printSampledCost(res.LF)
		return nil
	}
	var observe func(win int, m *cpu.Machine)
	var finishTrace func()
	var tr *telemetry.Trace
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		tr = telemetry.NewTrace(f)
		observe, finishTrace = telemetry.TraceSampledWindows(tr, 0)
	}
	st, err := sim.DefaultHarness().RunSampledObservedCtx(context.Background(), cfg, prog, sc, observe)
	if finishTrace != nil {
		finishTrace()
		if cerr := tr.Close(); cerr != nil && err == nil {
			return fmt.Errorf("trace: %w", cerr)
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("cycles            %.0f (sampled estimate)\n", st.EstCycles)
	fmt.Printf("instructions      %d (IPC %.2f)\n", st.TotalInsts, st.IPC())
	printSampledCost(st)
	return nil
}

// printSampledCost prints the sampled pipeline's cost/shape line.
func printSampledCost(st *sim.SampledStats) {
	fmt.Printf("sampled           %d windows (interval %d, window %d, warmup %d), detailed share %.0f%%\n",
		len(st.Windows), st.Sample.Interval, st.Sample.Window, st.Sample.Warmup, 100*st.DetailedShare)
	fmt.Printf("throughput        tier-1 %.1fM insts/s, effective %.1fM insts/s\n",
		st.Tier1IPS/1e6, st.EffectiveIPS/1e6)
}

// printRunError reports a failed run; a watchdog ProgressError additionally
// prints its diagnostic machine snapshot.
func printRunError(err error) {
	fmt.Fprintln(os.Stderr, "lfsim:", err)
	var pe *cpu.ProgressError
	if errors.As(err, &pe) {
		fmt.Fprint(os.Stderr, pe.Snapshot.String())
	}
}

// printInjected summarises the fault plan's per-kind injection counters.
func printInjected(plan *fault.Plan) {
	counts := plan.Counts()
	var parts []string
	for _, name := range fault.KindNames() {
		if c := counts[name]; c > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, c))
		}
	}
	if len(parts) == 0 {
		fmt.Printf("faults injected    none (plan %q, seed %d)\n", plan.Spec(), plan.Seed())
		return
	}
	fmt.Printf("faults injected    %s (plan %q, seed %d)\n", strings.Join(parts, " "), plan.Spec(), plan.Seed())
}

func writeRegistry(reg *telemetry.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadProgram(bench string, args []string) (*asm.Program, error) {
	if bench != "" {
		for _, suite := range [][]*workloads.Benchmark{workloads.CPU2017(), workloads.CPU2006(), workloads.Security()} {
			if b := workloads.ByName(suite, bench); b != nil {
				return b.Program()
			}
		}
		return nil, fmt.Errorf("unknown benchmark %q", bench)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: lfsim [flags] (-bench name | file.ll | file.s)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".s") {
		return asm.Assemble(args[0], string(src))
	}
	prog, diags, err := compiler.Compile(args[0], string(src))
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, "lfsim: note:", d)
	}
	return prog, err
}

func printStats(st *cpu.Stats) {
	fmt.Printf("cycles            %d\n", st.Cycles)
	fmt.Printf("instructions      %d (IPC %.2f)\n", st.ArchInsts, st.IPC())
	fmt.Printf("branches          %d (%.2f%% mispredicted)\n", st.Branches, 100*st.MispredictRate())
	fmt.Printf("loads/stores      %d/%d\n", st.Loads, st.Stores)
	fmt.Printf("detaches          %d (spawns %d, packed %d, no-context %d)\n",
		st.Detaches, st.Spawns, st.PackedSpawns, st.DetachNoContext)
	fmt.Printf("threadlet retires %d\n", st.Retires)
	fmt.Printf("squashes          conflict=%d overflow=%d sync=%d pack=%d wrongpath=%d external=%d\n",
		st.Squashes[0], st.Squashes[1], st.Squashes[2], st.Squashes[3], st.Squashes[4], st.Squashes[5])
	fmt.Printf("failed spec insts %d\n", st.SpecCommitted)
	total := uint64(0)
	for _, c := range st.LiveCycles {
		total += c
	}
	if total > 0 {
		fmt.Printf("occupancy         1:%d%% 2:%d%% 3:%d%% 4:%d%%\n",
			100*st.LiveCycles[0]/total, 100*st.LiveCycles[1]/total,
			100*st.LiveCycles[2]/total, 100*st.LiveCycles[3]/total)
	}
}
