// Command lftrace runs a program on the LoopFrog machine and prints the
// threadlet lifecycle timeline — the dynamic view of figure 2: epochs
// spawning ahead of the architectural thread, leapfrogging the window,
// retiring in order, and being squashed on conflicts or loop exits.
//
// Usage:
//
//	lftrace [-max N] (-bench name | file.ll | file.s)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"loopfrog/internal/asm"
	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/workloads"
)

func main() {
	maxEvents := flag.Int("max", 200, "maximum number of events to print")
	bench := flag.String("bench", "", "run a named built-in benchmark")
	flag.Parse()

	prog, err := load(*bench, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lftrace:", err)
		os.Exit(1)
	}
	m, err := cpu.NewMachine(cpu.DefaultConfig(), prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lftrace:", err)
		os.Exit(1)
	}
	printed := 0
	m.SetEventHook(func(e cpu.Event) {
		if printed < *maxEvents {
			fmt.Println(e)
			printed++
			if printed == *maxEvents {
				fmt.Println("... (further events suppressed)")
			}
		}
	})
	st, err := m.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lftrace:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d cycles, %d instructions, %d spawns, %d retires\n",
		st.Cycles, st.ArchInsts, st.Spawns, st.Retires)
}

func load(bench string, args []string) (*asm.Program, error) {
	if bench != "" {
		for _, suite := range [][]*workloads.Benchmark{workloads.CPU2017(), workloads.CPU2006()} {
			if b := workloads.ByName(suite, bench); b != nil {
				return b.Program()
			}
		}
		return nil, fmt.Errorf("unknown benchmark %q", bench)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: lftrace [-max N] (-bench name | file)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".s") {
		return asm.Assemble(args[0], string(src))
	}
	prog, _, err := compiler.Compile(args[0], string(src))
	return prog, err
}
