// Command lftrace runs a program on the LoopFrog machine and renders the
// threadlet lifecycle timeline — the dynamic view of figure 2: epochs
// spawning ahead of the architectural thread, leapfrogging the window,
// retiring in order, and being squashed on conflicts or loop exits.
//
// Usage:
//
//	lftrace [-format text|chrome] [-o file] [-max N] [-sample N]
//	        (-bench name | file.ll | file.s)
//
// The default text format prints up to -max events to stdout. -format=chrome
// writes Chrome trace-event JSON to -o (default lftrace.json), loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing: one track per
// threadlet context with epoch spans and squash/restart instants, plus a
// stacked commit-slot attribution counter sampled every -sample cycles.
// Invalid flag values exit 2 with a usage message.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"loopfrog/internal/asm"
	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/telemetry"
	"loopfrog/internal/workloads"
)

func main() {
	maxEvents := flag.Int("max", 200, "maximum number of events to print (text format)")
	bench := flag.String("bench", "", "run a named built-in benchmark")
	format := flag.String("format", "text", "output format: text or chrome")
	out := flag.String("o", "lftrace.json", "output file for -format=chrome")
	sample := flag.Int64("sample", 0, "commit-slot sample interval in cycles (0 = default)")
	flag.Parse()

	// Usage errors exit 2 before any program is loaded or simulated.
	if *format != "text" && *format != "chrome" {
		fmt.Fprintf(os.Stderr, "lftrace: unknown format %q (want text or chrome)\n", *format)
		flag.Usage()
		os.Exit(2)
	}
	if *sample < 0 {
		fmt.Fprintf(os.Stderr, "lftrace: -sample must be non-negative (got %d)\n", *sample)
		flag.Usage()
		os.Exit(2)
	}

	prog, err := load(*bench, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lftrace:", err)
		os.Exit(1)
	}
	m, err := cpu.NewMachine(cpu.DefaultConfig(), prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lftrace:", err)
		os.Exit(1)
	}

	switch *format {
	case "chrome":
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lftrace:", err)
			os.Exit(1)
		}
		tr := telemetry.NewTrace(f)
		mt := telemetry.AttachMachine(m, tr, *sample)
		st, runErr := m.Run()
		mt.Finish()
		if err := tr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lftrace:", err)
			os.Exit(1)
		}
		if runErr != nil {
			fmt.Fprintln(os.Stderr, "lftrace:", runErr)
			os.Exit(1)
		}
		fmt.Printf("%s: %d trace events over %d cycles (%d instructions, %d spawns, %d retires)\n",
			*out, tr.Events(), st.Cycles, st.ArchInsts, st.Spawns, st.Retires)
	case "text":
		printed := 0
		if *maxEvents <= 0 {
			runText(m)
			return
		}
		m.SetEventHook(func(e cpu.Event) {
			fmt.Println(e)
			printed++
			if printed == *maxEvents {
				fmt.Println("... (further events suppressed)")
				// Detach so the rest of the run pays no per-event cost.
				m.SetEventHook(nil)
			}
		})
		runText(m)
	}
}

func runText(m *cpu.Machine) {
	st, err := m.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lftrace:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d cycles, %d instructions, %d spawns, %d retires\n",
		st.Cycles, st.ArchInsts, st.Spawns, st.Retires)
}

func load(bench string, args []string) (*asm.Program, error) {
	if bench != "" {
		for _, suite := range [][]*workloads.Benchmark{workloads.CPU2017(), workloads.CPU2006()} {
			if b := workloads.ByName(suite, bench); b != nil {
				return b.Program()
			}
		}
		return nil, fmt.Errorf("unknown benchmark %q", bench)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: lftrace [-format text|chrome] [-o file] [-max N] (-bench name | file)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".s") {
		return asm.Assemble(args[0], string(src))
	}
	prog, _, err := compiler.Compile(args[0], string(src))
	return prog, err
}
