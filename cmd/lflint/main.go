// Command lflint statically verifies LoopFrog hint legality and epoch shape.
// Inputs are LFISA assembly (.s), LoopLang sources (.ll, compiled first), or
// the entire built-in benchmark suite with -corpus.
//
// Usage:
//
//	lflint [-format text|json|sarif] [-strict] [-corpus] [file ...]
//
// Diagnostics carry stable codes (LF0xx errors, LF1xx warnings, LF2xx
// profitability notes, LF3xx security findings) and positions: source line
// for assembled files, nearest label plus pc otherwise. -format sarif emits
// one SARIF 2.1.0 log covering every linted program, the interchange format
// code-scanning UIs ingest; security rules carry a "security" tag there.
// Exit status: 0 when clean, 1 when any error (or, with -strict, any
// warning) is found, 2 on usage or load failures. Profitability notes and
// security findings never affect the exit status; gate the latter with the
// dynamic detector (lfsim -spectre) instead, which confirms actual leaks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"loopfrog/internal/asm"
	"loopfrog/internal/compiler"
	"loopfrog/internal/lint"
	"loopfrog/internal/workloads"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lflint [-format text|json|sarif] [-strict] [-corpus] [file.s | file.ll ...]")
	os.Exit(2)
}

func main() {
	format := flag.String("format", "text", "output format: text, json, or sarif")
	strict := flag.Bool("strict", false, "treat warnings as failures")
	corpus := flag.Bool("corpus", false, "lint every built-in benchmark program")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lflint [-format text|json|sarif] [-strict] [-corpus] [file.s | file.ll ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "lflint: unknown format %q (want text, json, or sarif)\n", *format)
		usage()
	}
	if !*corpus && flag.NArg() == 0 {
		usage()
	}

	var reports []*lint.Report
	if *corpus {
		seen := make(map[string]bool)
		all := append(workloads.CPU2017(), workloads.CPU2006()...)
		all = append(all, workloads.Security()...)
		for _, b := range all {
			key := b.Suite + "/" + b.Name
			if seen[key] {
				continue
			}
			seen[key] = true
			p, err := b.Program()
			if err != nil {
				fmt.Fprintf(os.Stderr, "lflint: %s: %v\n", key, err)
				os.Exit(2)
			}
			rep := lint.Run(p, lint.Options{})
			rep.Program = key
			reports = append(reports, rep)
		}
	}
	for _, path := range flag.Args() {
		p, err := loadProgram(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lflint: %v\n", err)
			os.Exit(2)
		}
		reports = append(reports, lint.Run(p, lint.Options{}))
	}

	if *format == "sarif" {
		// One log, one run, every program an artifact — the shape GitHub
		// code scanning uploads expect.
		if err := lint.WriteSARIF(os.Stdout, reports); err != nil {
			fmt.Fprintln(os.Stderr, "lflint:", err)
			os.Exit(2)
		}
		for _, rep := range reports {
			if rep.Failed(*strict) {
				os.Exit(1)
			}
		}
		return
	}

	failed := false
	clean := 0
	for _, rep := range reports {
		if rep.Failed(*strict) {
			failed = true
		}
		switch *format {
		case "json":
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "lflint:", err)
				os.Exit(2)
			}
		default:
			if len(rep.Diags) == 0 {
				clean++
				continue
			}
			if err := rep.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "lflint:", err)
				os.Exit(2)
			}
		}
	}
	if *format == "text" && clean > 0 {
		fmt.Printf("%d program(s) clean\n", clean)
	}
	if failed {
		os.Exit(1)
	}
}

// loadProgram assembles a .s file or compiles anything else as LoopLang,
// naming the image after the file so diagnostics point at it.
func loadProgram(path string) (*asm.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".s") {
		return asm.Assemble(path, string(src))
	}
	prog, _, err := compiler.Compile(path, string(src))
	return prog, err
}
