// Command lfc is the LoopLang compiler driver: it compiles a .ll source
// file to LFISA and prints the disassembly (or the IR with -ir). Loops
// annotated @loopfrog get detach/reattach/sync hints inserted automatically
// (§5); de-selected loops are reported on stderr.
//
// Usage:
//
//	lfc [-ir] file.ll
package main

import (
	"flag"
	"fmt"
	"os"

	"loopfrog/internal/compiler"
)

func main() {
	ir := flag.Bool("ir", false, "dump the intermediate representation instead of assembly")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lfc [-ir] file.ll")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfc:", err)
		os.Exit(1)
	}
	if *ir {
		out, err := compiler.DumpIR(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfc:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	prog, diags, err := compiler.Compile(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfc:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, "lfc: note:", d)
	}
	fmt.Print(prog.Disassemble())
}
