// Command lfc is the LoopLang compiler driver: it compiles a .ll source
// file to LFISA and prints the disassembly (or the IR with -ir). Loops
// annotated @loopfrog get detach/reattach/sync hints inserted automatically
// (§5); de-selected loops are reported on stderr. Every emitted image is
// verified with the hint-legality linter before it is printed: a lint error
// is an internal compiler error and exits non-zero.
//
// Usage:
//
//	lfc [-ir] file.ll
package main

import (
	"flag"
	"fmt"
	"os"

	"loopfrog/internal/compiler"
	"loopfrog/internal/lint"
)

func main() {
	ir := flag.Bool("ir", false, "dump the intermediate representation instead of assembly")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lfc [-ir] file.ll")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfc:", err)
		os.Exit(1)
	}
	if *ir {
		out, err := compiler.DumpIR(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "lfc:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	prog, diags, err := compiler.Compile(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfc:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, "lfc: note:", d)
	}
	// Mandatory verification: the compiler's §5.1 selection must only emit
	// hints the linter proves legal. An error here is a compiler bug, not a
	// property of the input program.
	rep := lint.Run(prog, lint.Options{})
	for _, ld := range rep.Diags {
		switch ld.Severity {
		case lint.SevError:
			fmt.Fprintf(os.Stderr, "lfc: internal error: emitted program fails verification: %s: [%s] %s\n",
				ld.Position(flag.Arg(0)), ld.Code, ld.Message)
		case lint.SevWarning:
			fmt.Fprintf(os.Stderr, "lfc: note: %s: [%s] %s\n", ld.Position(flag.Arg(0)), ld.Code, ld.Message)
		}
	}
	if rep.Errors() > 0 {
		os.Exit(1)
	}
	fmt.Print(prog.Disassemble())
}
