var xs: [256]int;
var ys: [256]int;

fn step(v: int) -> int {
    # A serial per-element recurrence: too long for the window to overlap
    # many elements, so threadlets genuinely add parallelism.
    var t: int = v;
    for k in 0..90 {
        t = t * 31 + 7;
        t = t % 65521;
    }
    return t;
}

fn main() -> int {
    for i in 0..256 {
        xs[i] = i * 3;
    }
    var checked: int = 0;
    @loopfrog
    for i in 0..256 {
        var t: int = step(xs[i]);   # calls are fine inside the body
        ys[i] = t;
        checked = checked + 1;      # carried scalar: lands in the continuation
    }
    return checked;
}
