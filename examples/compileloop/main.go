// Compileloop: the full §5 pipeline end to end — LoopLang source with an
// @loopfrog annotation is compiled (loop selection, hint insertion, register
// allocation), disassembled to show the placed hints, then simulated.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"strings"

	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
)

// The source lives in compileloop.ll so tooling (lflint, lfc, lfsim) can
// consume it directly; it is embedded here to keep the example
// self-contained.
//
//go:embed compileloop.ll
var src string

func main() {
	prog, diags, err := compiler.Compile("compileloop", src)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Println("note:", d)
	}
	// Show the hint placement the compiler chose.
	for _, line := range strings.Split(prog.Disassemble(), "\n") {
		if strings.Contains(line, "detach") || strings.Contains(line, "reattach") || strings.Contains(line, "sync") {
			fmt.Println("hint:", strings.TrimSpace(line))
		}
	}
	base, err := sim.Run(cpu.BaselineConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	lf, err := sim.Run(cpu.DefaultConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline %d cycles, loopfrog %d cycles -> %.2fx\n",
		base.Cycles, lf.Cycles, float64(base.Cycles)/float64(lf.Cycles))
}
