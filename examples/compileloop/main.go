// Compileloop: the full §5 pipeline end to end — LoopLang source with an
// @loopfrog annotation is compiled (loop selection, hint insertion, register
// allocation), disassembled to show the placed hints, then simulated.
package main

import (
	"fmt"
	"log"
	"strings"

	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
)

const src = `
var xs: [256]int;
var ys: [256]int;

fn step(v: int) -> int {
    # A serial per-element recurrence: too long for the window to overlap
    # many elements, so threadlets genuinely add parallelism.
    var t: int = v;
    for k in 0..90 {
        t = t * 31 + 7;
        t = t % 65521;
    }
    return t;
}

fn main() -> int {
    for i in 0..256 {
        xs[i] = i * 3;
    }
    var checked: int = 0;
    @loopfrog
    for i in 0..256 {
        var t: int = step(xs[i]);   # calls are fine inside the body
        ys[i] = t;
        checked = checked + 1;      # carried scalar: lands in the continuation
    }
    return checked;
}
`

func main() {
	prog, diags, err := compiler.Compile("compileloop", src)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Println("note:", d)
	}
	// Show the hint placement the compiler chose.
	for _, line := range strings.Split(prog.Disassemble(), "\n") {
		if strings.Contains(line, "detach") || strings.Contains(line, "reattach") || strings.Contains(line, "sync") {
			fmt.Println("hint:", strings.TrimSpace(line))
		}
	}
	base, err := sim.Run(cpu.BaselineConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	lf, err := sim.Run(cpu.DefaultConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline %d cycles, loopfrog %d cycles -> %.2fx\n",
		base.Cycles, lf.Cycles, float64(base.Cycles)/float64(lf.Cycles))
}
