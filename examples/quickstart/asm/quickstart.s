        .data
xs:     .zero 16384
ys:     .zero 16384
        .text
main:   la   a0, xs
        la   a1, ys
        li   t0, 0
        li   t1, 2048
init:   slli t2, t0, 3
        add  t2, a0, t2
        sd   t0, 0(t2)
        addi t0, t0, 1
        blt  t0, t1, init
        li   t0, 0
# The hinted loop: header computes addresses, the body squares an element
# into ys, and the continuation (label cont, also the region ID) advances i.
loop:   slli t2, t0, 3
        add  t3, a0, t2
        add  t4, a1, t2
        detach cont
        ld   t5, 0(t3)
        mul  t5, t5, t5
        sd   t5, 0(t4)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t5, 0
        halt
