// Quickstart: assemble a hinted loop, run it on the baseline core and the
// LoopFrog machine, verify both against the reference interpreter, and
// print the speedup.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"loopfrog/internal/asm"
	"loopfrog/internal/cpu"
	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
)

// The source lives in asm/quickstart.s so tooling (lflint, lfc, lfsim) can
// consume it directly; it is embedded here to keep the example
// self-contained.
//
//go:embed asm/quickstart.s
var src string

func main() {
	prog, err := asm.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	oracle := ref.MustRun(prog, ref.Options{})

	run := func(name string, cfg cpu.Config) int64 {
		m, err := cpu.NewMachine(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
			log.Fatalf("%s diverged from the reference:\n%s", name, diff)
		}
		fmt.Printf("%-9s %7d cycles  IPC %.2f  spawns %d\n", name, st.Cycles, st.IPC(), st.Spawns)
		return st.Cycles
	}

	base := run("baseline", cpu.BaselineConfig())
	lf := run("loopfrog", cpu.DefaultConfig())
	fmt.Printf("speedup   %.2fx (exact same final state, ys[2047] = %d)\n",
		float64(base)/float64(lf), oracle.Mem.Read(prog.MustSymbol("ys")+2047*8, 8))
	_ = isa.NumRegs
}
