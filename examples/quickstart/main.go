// Quickstart: assemble a hinted loop, run it on the baseline core and the
// LoopFrog machine, verify both against the reference interpreter, and
// print the speedup.
package main

import (
	"fmt"
	"log"

	"loopfrog/internal/asm"
	"loopfrog/internal/cpu"
	"loopfrog/internal/isa"
	"loopfrog/internal/ref"
)

const src = `
        .data
xs:     .zero 16384
ys:     .zero 16384
        .text
main:   la   a0, xs
        la   a1, ys
        li   t0, 0
        li   t1, 2048
init:   slli t2, t0, 3
        add  t2, a0, t2
        sd   t0, 0(t2)
        addi t0, t0, 1
        blt  t0, t1, init
        li   t0, 0
# The hinted loop: header computes addresses, the body squares an element
# into ys, and the continuation (label cont, also the region ID) advances i.
loop:   slli t2, t0, 3
        add  t3, a0, t2
        add  t4, a1, t2
        detach cont
        ld   t5, 0(t3)
        mul  t5, t5, t5
        sd   t5, 0(t4)
        reattach cont
cont:   addi t0, t0, 1
        blt  t0, t1, loop
        sync cont
        li   t5, 0
        halt
`

func main() {
	prog, err := asm.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	oracle := ref.MustRun(prog, ref.Options{})

	run := func(name string, cfg cpu.Config) int64 {
		m, err := cpu.NewMachine(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		if diff := oracle.Mem.Diff(m.Memory()); diff != "" {
			log.Fatalf("%s diverged from the reference:\n%s", name, diff)
		}
		fmt.Printf("%-9s %7d cycles  IPC %.2f  spawns %d\n", name, st.Cycles, st.IPC(), st.Spawns)
		return st.Cycles
	}

	base := run("baseline", cpu.BaselineConfig())
	lf := run("loopfrog", cpu.DefaultConfig())
	fmt.Printf("speedup   %.2fx (exact same final state, ys[2047] = %d)\n",
		float64(base)/float64(lf), oracle.Mem.Read(prog.MustSymbol("ys")+2047*8, 8))
	_ = isa.NumRegs
}
