var big: [1048576]int;
var out: [600]int;

fn main() -> int {
    @loopfrog
    for i in 0..600 {
        var j: int = (i * 522437 + 7919) % 1048576;
        var v: int = big[j] + j;          # cold load: DRAM latency
        var r: int = 0;
        if v % 2 == 0 {                   # branch depends on the load
            r = v * 3 + 1;
        } else {
            r = v / 2 + 13;
        }
        for k in 0..120 {                 # per-element serial work
            r = r * 5 + 3;
        }
        out[i] = r;
    }
    return out[599];
}
