// Pointerchase: the omnetpp/mcf-style workload from the paper's motivation —
// an irregular walk where each iteration's condition and data come from
// slow, cache-missing loads. The baseline window stalls on the serial
// chain; LoopFrog threadlets leapfrog ahead and resolve future branches
// and misses early (§6.4).
package main

import (
	_ "embed"
	"fmt"
	"log"

	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
)

// The source lives in pointerchase.ll so tooling (lflint, lfc, lfsim) can
// consume it directly; it is embedded here to keep the example
// self-contained.
//
//go:embed pointerchase.ll
var src string

func main() {
	prog, diags, err := compiler.Compile("pointerchase", src)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Println("note:", d)
	}
	base, err := sim.Run(cpu.BaselineConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	lf, err := sim.Run(cpu.DefaultConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles (IPC %.2f, %d loads)\n", base.Cycles, base.IPC(), base.Loads)
	fmt.Printf("loopfrog: %d cycles (IPC %.2f, %d spawns, %d squashes)\n",
		lf.Cycles, lf.IPC(), lf.Spawns, lf.Squashes[0])
	fmt.Printf("speedup:  %.2fx\n", float64(base.Cycles)/float64(lf.Cycles))
}
