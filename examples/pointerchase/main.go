// Pointerchase: the omnetpp/mcf-style workload from the paper's motivation —
// an irregular walk where each iteration's condition and data come from
// slow, cache-missing loads. The baseline window stalls on the serial
// chain; LoopFrog threadlets leapfrog ahead and resolve future branches
// and misses early (§6.4).
package main

import (
	"fmt"
	"log"

	"loopfrog/internal/compiler"
	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
)

const src = `
var big: [1048576]int;
var out: [600]int;

fn main() -> int {
    @loopfrog
    for i in 0..600 {
        var j: int = (i * 522437 + 7919) % 1048576;
        var v: int = big[j] + j;          # cold load: DRAM latency
        var r: int = 0;
        if v % 2 == 0 {                   # branch depends on the load
            r = v * 3 + 1;
        } else {
            r = v / 2 + 13;
        }
        for k in 0..120 {                 # per-element serial work
            r = r * 5 + 3;
        }
        out[i] = r;
    }
    return out[599];
}
`

func main() {
	prog, diags, err := compiler.Compile("pointerchase", src)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Println("note:", d)
	}
	base, err := sim.Run(cpu.BaselineConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	lf, err := sim.Run(cpu.DefaultConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles (IPC %.2f, %d loads)\n", base.Cycles, base.IPC(), base.Loads)
	fmt.Printf("loopfrog: %d cycles (IPC %.2f, %d spawns, %d squashes)\n",
		lf.Cycles, lf.IPC(), lf.Spawns, lf.Squashes[0])
	fmt.Printf("speedup:  %.2fx\n", float64(base.Cycles)/float64(lf.Cycles))
}
