// Sensitivity: sweep the SSB size and granule size for a single kernel,
// the per-workload view behind figures 9 and 10.
package main

import (
	"fmt"
	"log"

	"loopfrog/internal/cpu"
	"loopfrog/internal/sim"
	"loopfrog/internal/workloads"
)

func main() {
	b := workloads.ByName(workloads.CPU2017(), "mcf")
	if b == nil {
		log.Fatal("mcf stand-in missing")
	}
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}
	base, err := sim.Run(cpu.BaselineConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles\n\nSSB total size sweep (4 slices):\n", base.Cycles)
	for _, total := range []int{512, 2 << 10, 8 << 10, 32 << 10} {
		cfg := cpu.DefaultConfig()
		cfg.SSB.SliceBytes = total / cfg.Threadlets
		lf, err := sim.Run(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6dB: %d cycles (%.2fx)\n", total, lf.Cycles, float64(base.Cycles)/float64(lf.Cycles))
	}
	fmt.Println("\ngranule size sweep:")
	for _, g := range []int{1, 2, 4, 8, 16, 32} {
		cfg := cpu.DefaultConfig()
		cfg.SSB.GranuleBytes = g
		lf, err := sim.Run(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2dB: %d cycles (%.2fx)\n", g, lf.Cycles, float64(base.Cycles)/float64(lf.Cycles))
	}
}
